//! The server's observability surface: one [`Registry`] carrying the full
//! metric catalog, the [`Tracer`] behind span dumps, and the handle bundle
//! the job queue records through.
//!
//! Every metric the server will ever emit is registered eagerly at
//! construction, so a scrape sees the complete catalog (with zero values)
//! from the very first render instead of metrics popping into existence
//! when first touched — the CI `metrics-drift` check depends on that.
//! Hot paths record exclusively through the cloned `Arc` handles below;
//! the registry lock is only taken at registration and render time.

use std::sync::Arc;
use std::time::Instant;

use kgnet_obs::{Counter, Gauge, Histogram, Registry, SpanGuard, Tracer};

/// Every metric the server registers, as `(name, kind)` pairs in
/// registration order. The bench harness's drift check walks this catalog
/// and fails when a rendered exposition is missing any of it.
pub const METRIC_CATALOG: &[(&str, &str)] = &[
    ("kgnet_query_latency_nanos", "histogram"),
    ("kgnet_query_rows", "histogram"),
    ("kgnet_query_triples_scanned_total", "counter"),
    ("kgnet_plan_cache_hits_total", "counter"),
    ("kgnet_plan_cache_misses_total", "counter"),
    ("kgnet_commit_latency_nanos", "histogram"),
    ("kgnet_store_generation", "gauge"),
    ("kgnet_retained_versions", "gauge"),
    ("kgnet_retained_bytes", "gauge"),
    ("kgnet_jobs_submitted_total", "counter"),
    ("kgnet_jobs_rejected_total", "counter"),
    ("kgnet_jobs_completed_total", "counter"),
    ("kgnet_jobs_failed_total", "counter"),
    ("kgnet_jobs_cancelled_total", "counter"),
    ("kgnet_queue_depth", "gauge"),
    ("kgnet_job_duration_nanos", "histogram"),
    ("kgnet_train_epoch_nanos", "histogram"),
    ("kgnet_ann_search_latency_nanos", "histogram"),
    ("kgnet_ann_candidates_total", "counter"),
    ("kgnet_ann_distance_computations_total", "counter"),
];

/// Finished spans retained by the server tracer before eviction.
const TRACE_CAPACITY: usize = 4096;

/// The metric handles the job queue records through, split out so the
/// queue can hold them without depending on the whole server surface.
/// The `jobs_*_total` counters are monotonic: pruning or forgetting a
/// terminal job record never takes its outcome back out of them.
pub struct QueueObs {
    /// Jobs admitted by [`crate::JobQueue::submit`].
    pub jobs_submitted: Arc<Counter>,
    /// Submissions refused at admission (full queue, budget, shutdown).
    pub jobs_rejected: Arc<Counter>,
    /// Jobs that reached `Done`.
    pub jobs_completed: Arc<Counter>,
    /// Jobs that reached `Failed`.
    pub jobs_failed: Arc<Counter>,
    /// Jobs that reached `Cancelled`.
    pub jobs_cancelled: Arc<Counter>,
    /// Jobs currently waiting for a worker.
    pub queue_depth: Arc<Gauge>,
    /// Wall time from worker pickup to the terminal transition.
    pub job_duration: Arc<Histogram>,
}

/// The server-wide metric catalog plus the tracer. One instance per
/// [`crate::KgServer`]; sessions and the queue record through cloned
/// handles.
pub struct ServerMetrics {
    registry: Arc<Registry>,
    tracer: Tracer,
    queue: Arc<QueueObs>,
    /// End-to-end latency of read-session queries.
    pub query_latency: Arc<Histogram>,
    /// Rows returned per read-session query.
    pub query_rows: Arc<Histogram>,
    /// Triples pulled from index scans by read-session queries.
    pub query_triples_scanned: Arc<Counter>,
    /// Shared-plan-cache hits across all read sessions.
    pub plan_cache_hits: Arc<Counter>,
    /// Shared-plan-cache misses (parse + plan compilations).
    pub plan_cache_misses: Arc<Counter>,
    /// Wall time of `WriteSession::commit` publishes.
    pub commit_latency: Arc<Histogram>,
    /// Generation of the published store version.
    pub store_generation: Arc<Gauge>,
    /// MVCC versions currently retained (published + pinned).
    pub retained_versions: Arc<Gauge>,
    /// Approximate index bytes retained across live versions.
    pub retained_bytes: Arc<Gauge>,
    /// Wall time of completed training epochs.
    pub train_epoch: Arc<Histogram>,
    /// Latency of similarity searches served from ANN indexes.
    pub ann_search_latency: Arc<Histogram>,
    /// Candidate vectors considered across all ANN searches.
    pub ann_candidates: Arc<Counter>,
    /// Distance computations spent across all ANN searches.
    pub ann_distance_computations: Arc<Counter>,
}

impl ServerMetrics {
    /// Build the catalog on a fresh registry (one per server, so tests and
    /// embedded instances never share counters).
    pub fn new() -> ServerMetrics {
        let r = Arc::new(Registry::new());
        let queue = Arc::new(QueueObs {
            jobs_submitted: r.counter("kgnet_jobs_submitted_total", "Training jobs admitted"),
            jobs_rejected: r
                .counter("kgnet_jobs_rejected_total", "Training submissions refused at admission"),
            jobs_completed: r.counter("kgnet_jobs_completed_total", "Training jobs finished Done"),
            jobs_failed: r.counter("kgnet_jobs_failed_total", "Training jobs finished Failed"),
            jobs_cancelled: r
                .counter("kgnet_jobs_cancelled_total", "Training jobs finished Cancelled"),
            queue_depth: r.gauge("kgnet_queue_depth", "Training jobs waiting for a worker"),
            job_duration: r.histogram(
                "kgnet_job_duration_nanos",
                "Training job wall time, pickup to terminal",
            ),
        });
        let m = ServerMetrics {
            query_latency: r
                .histogram("kgnet_query_latency_nanos", "End-to-end read-session query latency"),
            query_rows: r.histogram("kgnet_query_rows", "Rows returned per read-session query"),
            query_triples_scanned: r.counter(
                "kgnet_query_triples_scanned_total",
                "Triples pulled from index scans by queries",
            ),
            plan_cache_hits: r.counter("kgnet_plan_cache_hits_total", "Shared plan-cache hits"),
            plan_cache_misses: r
                .counter("kgnet_plan_cache_misses_total", "Shared plan-cache misses"),
            commit_latency: r
                .histogram("kgnet_commit_latency_nanos", "Write-session commit latency"),
            store_generation: r
                .gauge("kgnet_store_generation", "Generation of the published store version"),
            retained_versions: r
                .gauge("kgnet_retained_versions", "MVCC store versions currently retained"),
            retained_bytes: r
                .gauge("kgnet_retained_bytes", "Approximate index bytes retained across versions"),
            train_epoch: r
                .histogram("kgnet_train_epoch_nanos", "Wall time of completed training epochs"),
            ann_search_latency: r
                .histogram("kgnet_ann_search_latency_nanos", "ANN similarity-search latency"),
            ann_candidates: r.counter(
                "kgnet_ann_candidates_total",
                "Candidate vectors considered by ANN searches",
            ),
            ann_distance_computations: r.counter(
                "kgnet_ann_distance_computations_total",
                "Distance computations spent by ANN searches",
            ),
            tracer: Tracer::new(TRACE_CAPACITY),
            queue,
            registry: r,
        };
        debug_assert_eq!(
            {
                let mut names = m.registry.names();
                names.sort();
                names
            },
            {
                let mut names: Vec<String> =
                    METRIC_CATALOG.iter().map(|(n, _)| (*n).to_owned()).collect();
                names.sort();
                names
            },
            "METRIC_CATALOG out of sync with the registered instruments"
        );
        m
    }

    /// The underlying registry (for embedding extra metrics beside the
    /// server's own catalog).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The queue's handle bundle.
    pub fn queue_obs(&self) -> Arc<QueueObs> {
        Arc::clone(&self.queue)
    }

    /// The server tracer; [`crate::KgServer::trace_dump`] drains it.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Open a span on the server tracer.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard<'_> {
        self.tracer.span(name)
    }

    /// Render the full catalog in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Render the full catalog as one JSON object.
    pub fn render_json(&self) -> String {
        self.registry.render_json()
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl std::fmt::Debug for ServerMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerMetrics")
            .field("metrics", &self.registry.names().len())
            .field("tracer", &self.tracer)
            .finish_non_exhaustive()
    }
}

/// Nanoseconds since `t0`, saturating at `u64::MAX`.
pub(crate) fn nanos_since(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_registered_eagerly_with_declared_kinds() {
        let m = ServerMetrics::new();
        let text = m.render_prometheus();
        for (name, kind) in METRIC_CATALOG {
            assert!(
                text.contains(&format!("# TYPE {name} {kind}\n")),
                "missing or miskinded metric {name} ({kind})"
            );
        }
        assert_eq!(m.registry().names().len(), METRIC_CATALOG.len());
    }

    #[test]
    fn two_servers_do_not_share_counters() {
        let a = ServerMetrics::new();
        let b = ServerMetrics::new();
        a.plan_cache_hits.add(5);
        assert_eq!(b.plan_cache_hits.get(), 0);
    }

    #[test]
    fn spans_flow_into_the_server_tracer() {
        let m = ServerMetrics::new();
        {
            let _outer = m.span("outer");
            let _inner = m.span("inner");
        }
        let records = m.tracer().drain();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].name, "outer");
    }
}
