//! Per-session LRU cache of prepared SPARQL plans.
//!
//! Planning a SELECT re-resolves every ground term, re-reads predicate
//! statistics and re-materialises sub-selects; for the repeated parametric
//! queries of an OLTP-style workload that work is identical run after run.
//! The cache keys plans by the *lexer's token stream* plus the store
//! [`generation`](kgnet_rdf::RdfStore::generation) they were compiled
//! against. Deriving the key from [`tokenize`] makes it agree with the
//! parser by construction — whitespace and `#` comments never fragment the
//! cache, both `"..."` and `'...'` literal styles keep their content
//! significant, a `#` inside an `<...>` IRI is a fragment — and any write
//! to the shared store invalidates every cached plan implicitly: a stale
//! entry simply misses and is re-prepared against the new snapshot.
//!
//! Lookup ([`PlanCache::get`]) and insertion ([`PlanCache::prepare_insert`])
//! are split so a hit costs one tokenize + hash — callers skip re-parsing
//! the query text entirely on the hot path.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use kgnet_rdf::sparql::lexer::tokenize;
use kgnet_rdf::sparql::{prepare_select, SelectQuery};
use kgnet_rdf::{PreparedQuery, RdfStore, SparqlError};

/// Hit/miss counters and occupancy of one plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (same token stream, same generation).
    pub hits: u64,
    /// Plans prepared and inserted (cold, or invalidated by a store write).
    /// Lookups for queries that are never cached (ML SELECTs, updates) do
    /// not count, so hits/misses reflect only cacheable traffic.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
}

struct Entry {
    prepared: Arc<PreparedQuery>,
    last_used: u64,
}

/// An LRU map from a query's token stream to a prepared plan.
pub struct PlanCache {
    capacity: usize,
    entries: HashMap<String, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Cache holding at most `capacity` plans (at least one).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats { hits: self.hits, misses: self.misses, entries: self.entries.len() }
    }

    /// Fetch the plan for `text` if one was compiled against the store's
    /// current generation, dropping any stale entry on the way. On `None`
    /// the caller should parse and [`prepare_insert`](Self::prepare_insert)
    /// next; the miss is counted there, so lookups for never-cached query
    /// kinds do not skew the stats.
    pub fn get(&mut self, store: &RdfStore, text: &str) -> Option<Arc<PreparedQuery>> {
        let key = key_of(text)?;
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            if entry.prepared.generation() == store.generation() {
                entry.last_used = self.tick;
                self.hits += 1;
                return Some(entry.prepared.clone());
            }
            // Compiled against an older snapshot: evict and re-plan.
            self.entries.remove(&key);
        }
        None
    }

    /// Plan `parsed` against the store's current snapshot and cache it
    /// under `text`'s token stream for the next [`get`](Self::get).
    pub fn prepare_insert(
        &mut self,
        store: &RdfStore,
        text: &str,
        parsed: SelectQuery,
    ) -> Result<Arc<PreparedQuery>, SparqlError> {
        let prepared = Arc::new(prepare_select(store, parsed)?);
        self.misses += 1;
        if let Some(key) = key_of(text) {
            self.tick += 1;
            if self.entries.len() >= self.capacity {
                self.evict_lru();
            }
            self.entries.insert(key, Entry { prepared: prepared.clone(), last_used: self.tick });
        }
        Ok(prepared)
    }

    fn evict_lru(&mut self) {
        if let Some(key) =
            self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
        {
            self.entries.remove(&key);
        }
    }
}

/// The cache key: the query's token stream rendered unambiguously. Built on
/// the parser's own [`tokenize`], so "same query" can never drift from what
/// the parser sees — whitespace and comments are discarded, literal content
/// (either quote style) is significant, IRIs are scanned atomically. `None`
/// when the text does not lex; such a query cannot have produced a plan and
/// is never cached.
fn key_of(text: &str) -> Option<String> {
    let tokens = tokenize(text).ok()?;
    let mut key = String::with_capacity(text.len());
    for token in &tokens {
        // Debug rendering is self-delimiting: variant name + quoted,
        // escaped payloads.
        let _ = write!(key, "{token:?} ");
    }
    Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgnet_rdf::sparql::parse_select;
    use kgnet_rdf::Term;

    fn store() -> RdfStore {
        let mut st = RdfStore::new();
        for i in 0..5 {
            st.insert(Term::iri(format!("http://x/s{i}")), Term::iri("http://x/p"), Term::int(i));
        }
        st
    }

    /// The caller-side protocol: consult the cache, parse + insert on miss.
    fn fetch(cache: &mut PlanCache, st: &RdfStore, q: &str) -> Arc<PreparedQuery> {
        if let Some(prepared) = cache.get(st, q) {
            return prepared;
        }
        cache.prepare_insert(st, q, parse_select(q).unwrap()).unwrap()
    }

    #[test]
    fn hit_on_repeat_and_whitespace_variants() {
        let st = store();
        let mut cache = PlanCache::new(8);
        let q = "SELECT ?s WHERE { ?s <http://x/p> ?o }";
        let a = fetch(&mut cache, &st, q);
        let variant = "SELECT ?s  WHERE {\n  ?s <http://x/p> ?o\n}";
        let b = fetch(&mut cache, &st, variant);
        assert!(Arc::ptr_eq(&a, &b), "token-identical variants must share one plan");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn literal_whitespace_is_significant() {
        // Two queries differing only inside a string literal must not share
        // a cache key — otherwise the second silently gets the first's plan
        // (and, for ground literals, the first's results).
        let mut st = RdfStore::new();
        st.insert(Term::iri("http://x/two"), Term::iri("http://x/t"), Term::str("a  b"));
        st.insert(Term::iri("http://x/one"), Term::iri("http://x/t"), Term::str("a b"));
        let mut cache = PlanCache::new(8);
        let two_spaces = r#"SELECT ?p WHERE { ?p <http://x/t> "a  b" }"#;
        let one_space = r#"SELECT ?p WHERE { ?p <http://x/t> "a b" }"#;
        assert_ne!(key_of(two_spaces), key_of(one_space));
        let a = fetch(&mut cache, &st, two_spaces);
        let b = fetch(&mut cache, &st, one_space);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 2);
        // Escaped quotes do not terminate the literal early.
        assert_ne!(
            key_of(r#"SELECT ?p WHERE { ?p <http://x/t> "x\" y" }"#),
            key_of(r#"SELECT ?p WHERE { ?p <http://x/t> "x\"  y" }"#),
        );
    }

    #[test]
    fn single_quoted_literal_whitespace_is_significant() {
        // The lexer accepts '...' literals too: they must get the same
        // treatment as "...", or two queries differing only inside a
        // single-quoted literal would share one cache key (and plan).
        let mut st = RdfStore::new();
        st.insert(Term::iri("http://x/two"), Term::iri("http://x/t"), Term::str("a  b"));
        st.insert(Term::iri("http://x/one"), Term::iri("http://x/t"), Term::str("a b"));
        let mut cache = PlanCache::new(8);
        let two_spaces = "SELECT ?p WHERE { ?p <http://x/t> 'a  b' }";
        let one_space = "SELECT ?p WHERE { ?p <http://x/t> 'a b' }";
        assert_ne!(key_of(two_spaces), key_of(one_space));
        let a = fetch(&mut cache, &st, two_spaces);
        let b = fetch(&mut cache, &st, one_space);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 2);
        // Both quote styles of the same content are the same token stream.
        assert_eq!(key_of("{ 'a b' }"), key_of("{ \"a b\" }"));
    }

    #[test]
    fn comments_are_stripped_like_the_lexer() {
        // The lexer discards #-to-end-of-line comments, so comment text must
        // not fragment the key...
        assert_eq!(
            key_of("SELECT ?s # fetch\nWHERE { ?s <http://x/p> ?o }"),
            key_of("SELECT ?s WHERE { ?s <http://x/p> ?o }"),
        );
        // ...and an unmatched quote inside a comment must not desync the
        // literal tracking for a real literal later in the query.
        let a = "SELECT ?s # don't\nWHERE { ?s <http://x/p> \"a  b\" }";
        let b = "SELECT ?s # don't\nWHERE { ?s <http://x/p> \"a b\" }";
        assert_ne!(key_of(a), key_of(b));
        // '#' inside an IRI is a fragment, not a comment start.
        assert_ne!(
            key_of("SELECT ?s WHERE { ?s <http://x/p#frag> ?o }"),
            key_of("SELECT ?s WHERE { ?s <http://x/p> ?o }"),
        );
        // Unlexable text never produces a key (and is never cached).
        assert_eq!(key_of("SELECT ?s WHERE { \"unterminated }"), None);
    }

    #[test]
    fn generation_bump_invalidates() {
        let mut st = store();
        let mut cache = PlanCache::new(8);
        let q = "SELECT ?s WHERE { ?s <http://x/p> ?o }";
        let a = fetch(&mut cache, &st, q);
        st.insert(Term::iri("http://x/new"), Term::iri("http://x/p"), Term::int(9));
        let b = fetch(&mut cache, &st, q);
        assert!(!Arc::ptr_eq(&a, &b), "write must invalidate the cached plan");
        assert_eq!(b.generation(), st.generation());
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let st = store();
        let mut cache = PlanCache::new(2);
        let q1 = "SELECT ?s WHERE { ?s <http://x/p> ?o } LIMIT 1";
        let q2 = "SELECT ?s WHERE { ?s <http://x/p> ?o } LIMIT 2";
        let q3 = "SELECT ?s WHERE { ?s <http://x/p> ?o } LIMIT 3";
        fetch(&mut cache, &st, q1);
        fetch(&mut cache, &st, q2);
        fetch(&mut cache, &st, q1); // refresh q1
        fetch(&mut cache, &st, q3); // evicts q2
        assert_eq!(cache.stats().entries, 2);
        fetch(&mut cache, &st, q1);
        assert_eq!(cache.stats().hits, 2, "q1 must still be cached");
        fetch(&mut cache, &st, q2);
        assert_eq!(cache.stats().misses, 4, "q2 must have been evicted");
    }
}
