//! The server-wide shared LRU cache of prepared SPARQL plans.
//!
//! Planning a SELECT re-resolves every ground term, re-reads predicate
//! statistics and re-materialises sub-selects; for the repeated parametric
//! queries of an OLTP-style workload that work is identical run after run —
//! and identical *across sessions*, so one [`SharedPlanCache`] hangs off
//! the server and every [`ReadSession`](crate::ReadSession) consults it. A
//! plan prepared by any session serves all of them.
//!
//! Entries are keyed by the *lexer's token stream* plus the store
//! [`generation`](kgnet_rdf::RdfStore::generation) (MVCC snapshot version)
//! they were compiled against. Deriving the key from [`tokenize`] makes it
//! agree with the parser by construction — whitespace and `#` comments
//! never fragment the cache, both `"..."` and `'...'` literal styles keep
//! their content significant, a `#` inside an `<...>` IRI is a fragment.
//! Because the generation is part of the key (not a validity check), a
//! session pinned to an older snapshot keeps hitting the plans compiled
//! for *its* version while sessions on the current version populate
//! theirs; superseded-generation entries age out through the LRU policy.
//!
//! Lookup ([`SharedPlanCache::get`]) and insertion
//! ([`SharedPlanCache::prepare_insert`]) are split so a hit costs one
//! tokenize + hash under a short mutex hold — callers skip re-parsing the
//! query text entirely on the hot path. Sessions count their own hits and
//! misses; the cache keeps the server-wide totals.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use kgnet_sync::profile::SyncSite;
use kgnet_sync::tracked::lock_tracked;
use kgnet_sync::Mutex;

use kgnet_rdf::sparql::lexer::tokenize;

/// Contention profile of the shared plan-cache mutex: every session's
/// lookup and every cold-plan insertion funnels through it, so its
/// contended share is the first thing to check when read p99 regresses.
static PLAN_CACHE_SITE: SyncSite = SyncSite::new("server.plan_cache");
use kgnet_rdf::sparql::{prepare_select, SelectQuery};
use kgnet_rdf::{PreparedQuery, RdfStore, SparqlError};

/// Hit/miss counters and occupancy of a plan cache (server-wide when read
/// off the cache itself, per-session when read off a `ReadSession`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (same token stream, same generation).
    pub hits: u64,
    /// Plans prepared and inserted (cold, or a generation not yet seen).
    /// Lookups for queries that are never cached (ML SELECTs, updates) do
    /// not count, so hits/misses reflect only cacheable traffic.
    pub misses: u64,
    /// Entries currently cached (across all generations).
    pub entries: usize,
}

struct Entry {
    prepared: Arc<PreparedQuery>,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<(String, u64), Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// A shared LRU map from `(query token stream, store generation)` to a
/// prepared plan. Interior-mutable: sessions hold it behind an `Arc` and
/// call through `&self` concurrently.
pub struct SharedPlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl SharedPlanCache {
    /// Cache holding at most `capacity` plans (at least one).
    pub fn new(capacity: usize) -> Self {
        SharedPlanCache { capacity: capacity.max(1), inner: Mutex::new(Inner::default()) }
    }

    /// Server-wide counters.
    pub fn stats(&self) -> CacheStats {
        let inner = lock_tracked(&self.inner, &PLAN_CACHE_SITE);
        CacheStats { hits: inner.hits, misses: inner.misses, entries: inner.entries.len() }
    }

    /// Fetch the plan for `text` compiled against snapshot `generation`.
    /// On `None` the caller should parse and
    /// [`prepare_insert`](Self::prepare_insert) next; the miss is counted
    /// there, so lookups for never-cached query kinds do not skew the
    /// stats.
    pub fn get(&self, generation: u64, text: &str) -> Option<Arc<PreparedQuery>> {
        let key = key_of(text)?;
        let mut inner = lock_tracked(&self.inner, &PLAN_CACHE_SITE);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(&(key, generation)) {
            entry.last_used = tick;
            let prepared = entry.prepared.clone();
            inner.hits += 1;
            return Some(prepared);
        }
        None
    }

    /// Plan `parsed` against `store` (a pinned snapshot) and cache it under
    /// `text`'s token stream and the snapshot's generation for the next
    /// [`get`](Self::get) — by this session or any other. Planning runs
    /// outside the cache lock; when two sessions race on the same cold
    /// query both prepare and the last insert wins, which is correct
    /// because equal keys imply equal plans.
    pub fn prepare_insert(
        &self,
        store: &RdfStore,
        text: &str,
        parsed: SelectQuery,
    ) -> Result<Arc<PreparedQuery>, SparqlError> {
        let prepared = Arc::new(prepare_select(store, parsed)?);
        let mut inner = lock_tracked(&self.inner, &PLAN_CACHE_SITE);
        inner.misses += 1;
        if let Some(key) = key_of(text) {
            inner.tick += 1;
            let tick = inner.tick;
            if inner.entries.len() >= self.capacity {
                evict_lru(&mut inner);
            }
            inner.entries.insert(
                (key, store.generation()),
                Entry { prepared: prepared.clone(), last_used: tick },
            );
        }
        Ok(prepared)
    }
}

fn evict_lru(inner: &mut Inner) {
    if let Some(key) = inner.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
    {
        inner.entries.remove(&key);
    }
}

/// The cache key: the query's token stream rendered unambiguously. Built on
/// the parser's own [`tokenize`], so "same query" can never drift from what
/// the parser sees — whitespace and comments are discarded, literal content
/// (either quote style) is significant, IRIs are scanned atomically. `None`
/// when the text does not lex; such a query cannot have produced a plan and
/// is never cached.
fn key_of(text: &str) -> Option<String> {
    let tokens = tokenize(text).ok()?;
    let mut key = String::with_capacity(text.len());
    for token in &tokens {
        // Debug rendering is self-delimiting: variant name + quoted,
        // escaped payloads.
        let _ = write!(key, "{token:?} ");
    }
    Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgnet_rdf::sparql::parse_select;
    use kgnet_rdf::Term;

    fn store() -> RdfStore {
        let mut st = RdfStore::new();
        for i in 0..5 {
            st.insert(Term::iri(format!("http://x/s{i}")), Term::iri("http://x/p"), Term::int(i));
        }
        st
    }

    /// The caller-side protocol: consult the cache, parse + insert on miss.
    fn fetch(cache: &SharedPlanCache, st: &RdfStore, q: &str) -> Arc<PreparedQuery> {
        if let Some(prepared) = cache.get(st.generation(), q) {
            return prepared;
        }
        cache.prepare_insert(st, q, parse_select(q).unwrap()).unwrap()
    }

    #[test]
    fn hit_on_repeat_and_whitespace_variants() {
        let st = store();
        let cache = SharedPlanCache::new(8);
        let q = "SELECT ?s WHERE { ?s <http://x/p> ?o }";
        let a = fetch(&cache, &st, q);
        let variant = "SELECT ?s  WHERE {\n  ?s <http://x/p> ?o\n}";
        let b = fetch(&cache, &st, variant);
        assert!(Arc::ptr_eq(&a, &b), "token-identical variants must share one plan");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn literal_whitespace_is_significant() {
        // Two queries differing only inside a string literal must not share
        // a cache key — otherwise the second silently gets the first's plan
        // (and, for ground literals, the first's results).
        let mut st = RdfStore::new();
        st.insert(Term::iri("http://x/two"), Term::iri("http://x/t"), Term::str("a  b"));
        st.insert(Term::iri("http://x/one"), Term::iri("http://x/t"), Term::str("a b"));
        let cache = SharedPlanCache::new(8);
        let two_spaces = r#"SELECT ?p WHERE { ?p <http://x/t> "a  b" }"#;
        let one_space = r#"SELECT ?p WHERE { ?p <http://x/t> "a b" }"#;
        assert_ne!(key_of(two_spaces), key_of(one_space));
        let a = fetch(&cache, &st, two_spaces);
        let b = fetch(&cache, &st, one_space);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 2);
        // Escaped quotes do not terminate the literal early.
        assert_ne!(
            key_of(r#"SELECT ?p WHERE { ?p <http://x/t> "x\" y" }"#),
            key_of(r#"SELECT ?p WHERE { ?p <http://x/t> "x\"  y" }"#),
        );
    }

    #[test]
    fn single_quoted_literal_whitespace_is_significant() {
        // The lexer accepts '...' literals too: they must get the same
        // treatment as "...", or two queries differing only inside a
        // single-quoted literal would share one cache key (and plan).
        let mut st = RdfStore::new();
        st.insert(Term::iri("http://x/two"), Term::iri("http://x/t"), Term::str("a  b"));
        st.insert(Term::iri("http://x/one"), Term::iri("http://x/t"), Term::str("a b"));
        let cache = SharedPlanCache::new(8);
        let two_spaces = "SELECT ?p WHERE { ?p <http://x/t> 'a  b' }";
        let one_space = "SELECT ?p WHERE { ?p <http://x/t> 'a b' }";
        assert_ne!(key_of(two_spaces), key_of(one_space));
        let a = fetch(&cache, &st, two_spaces);
        let b = fetch(&cache, &st, one_space);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 2);
        // Both quote styles of the same content are the same token stream.
        assert_eq!(key_of("{ 'a b' }"), key_of("{ \"a b\" }"));
    }

    #[test]
    fn comments_are_stripped_like_the_lexer() {
        // The lexer discards #-to-end-of-line comments, so comment text must
        // not fragment the key...
        assert_eq!(
            key_of("SELECT ?s # fetch\nWHERE { ?s <http://x/p> ?o }"),
            key_of("SELECT ?s WHERE { ?s <http://x/p> ?o }"),
        );
        // ...and an unmatched quote inside a comment must not desync the
        // literal tracking for a real literal later in the query.
        let a = "SELECT ?s # don't\nWHERE { ?s <http://x/p> \"a  b\" }";
        let b = "SELECT ?s # don't\nWHERE { ?s <http://x/p> \"a b\" }";
        assert_ne!(key_of(a), key_of(b));
        // '#' inside an IRI is a fragment, not a comment start.
        assert_ne!(
            key_of("SELECT ?s WHERE { ?s <http://x/p#frag> ?o }"),
            key_of("SELECT ?s WHERE { ?s <http://x/p> ?o }"),
        );
        // Unlexable text never produces a key (and is never cached).
        assert_eq!(key_of("SELECT ?s WHERE { \"unterminated }"), None);
    }

    #[test]
    fn generations_key_independent_entries() {
        // A new store version misses (its plan is compiled fresh), but the
        // old version's plan survives under its own key: a session pinned
        // to the older snapshot keeps hitting it.
        let mut st = store();
        let cache = SharedPlanCache::new(8);
        let q = "SELECT ?s WHERE { ?s <http://x/p> ?o }";
        let old_gen = st.generation();
        let a = fetch(&cache, &st, q);
        st.insert(Term::iri("http://x/new"), Term::iri("http://x/p"), Term::int(9));
        let b = fetch(&cache, &st, q);
        assert!(!Arc::ptr_eq(&a, &b), "a new version must get a freshly compiled plan");
        assert_eq!(b.generation(), st.generation());
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().entries, 2, "both versions' plans coexist");
        let pinned = cache.get(old_gen, q).expect("old version's plan must survive");
        assert!(Arc::ptr_eq(&a, &pinned));
    }

    #[test]
    fn plans_are_shared_across_caller_identities() {
        // The same `&SharedPlanCache` consulted by two independent callers
        // (standing in for two read sessions): the second caller hits the
        // plan the first one prepared.
        let st = store();
        let cache = SharedPlanCache::new(8);
        let q = "SELECT ?s WHERE { ?s <http://x/p> ?o }";
        let a = fetch(&cache, &st, q);
        let b = cache.get(st.generation(), q).expect("cross-caller hit");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, entries: 1 });
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let st = store();
        let cache = SharedPlanCache::new(2);
        let q1 = "SELECT ?s WHERE { ?s <http://x/p> ?o } LIMIT 1";
        let q2 = "SELECT ?s WHERE { ?s <http://x/p> ?o } LIMIT 2";
        let q3 = "SELECT ?s WHERE { ?s <http://x/p> ?o } LIMIT 3";
        fetch(&cache, &st, q1);
        fetch(&cache, &st, q2);
        fetch(&cache, &st, q1); // refresh q1
        fetch(&cache, &st, q3); // evicts q2
        assert_eq!(cache.stats().entries, 2);
        fetch(&cache, &st, q1);
        assert_eq!(cache.stats().hits, 2, "q1 must still be cached");
        fetch(&cache, &st, q2);
        assert_eq!(cache.stats().misses, 4, "q2 must have been evicted");
    }
}
