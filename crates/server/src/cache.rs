//! Per-session LRU cache of prepared SPARQL plans.
//!
//! Planning a SELECT re-resolves every ground term, re-reads predicate
//! statistics and re-materialises sub-selects; for the repeated parametric
//! queries of an OLTP-style workload that work is identical run after run.
//! The cache keys plans by *normalized query text* plus the store
//! [`generation`](kgnet_rdf::RdfStore::generation) they were compiled
//! against, so any write to the shared store invalidates every cached plan
//! implicitly — a stale entry simply misses and is re-prepared against the
//! new snapshot.

use std::collections::HashMap;
use std::sync::Arc;

use kgnet_rdf::sparql::{prepare_select, SelectQuery};
use kgnet_rdf::{PreparedQuery, RdfStore, SparqlError};

/// Hit/miss counters and occupancy of one plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (same text, same generation).
    pub hits: u64,
    /// Lookups that had to plan (cold, or invalidated by a store write).
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
}

struct Entry {
    prepared: Arc<PreparedQuery>,
    last_used: u64,
}

/// An LRU map from normalized query text to a prepared plan.
pub struct PlanCache {
    capacity: usize,
    entries: HashMap<String, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Cache holding at most `capacity` plans (at least one).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats { hits: self.hits, misses: self.misses, entries: self.entries.len() }
    }

    /// Fetch the plan for `text` compiled against the store's current
    /// generation, planning (and caching) on a miss. `parsed` is the
    /// already-parsed query, consumed only when planning is needed.
    pub fn get_or_prepare(
        &mut self,
        store: &RdfStore,
        text: &str,
        parsed: SelectQuery,
    ) -> Result<Arc<PreparedQuery>, SparqlError> {
        let key = normalize(text);
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            if entry.prepared.generation() == store.generation() {
                entry.last_used = self.tick;
                self.hits += 1;
                return Ok(entry.prepared.clone());
            }
            // Compiled against an older snapshot: evict and re-plan.
            self.entries.remove(&key);
        }
        self.misses += 1;
        let prepared = Arc::new(prepare_select(store, parsed)?);
        if self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        self.entries.insert(key, Entry { prepared: prepared.clone(), last_used: self.tick });
        Ok(prepared)
    }

    fn evict_lru(&mut self) {
        if let Some(key) =
            self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
        {
            self.entries.remove(&key);
        }
    }
}

/// Collapse whitespace runs *outside string literals* to single spaces so
/// formatting differences do not fragment the cache. Whitespace inside
/// quoted literals is significant (`"a  b"` and `"a b"` are different
/// terms) and is preserved verbatim, including escaped quotes.
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars().peekable();
    let mut pending_space = false;
    while let Some(c) = chars.next() {
        if c == '"' {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.push('"');
            let mut escaped = false;
            for c in chars.by_ref() {
                out.push(c);
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    break;
                }
            }
        } else if c.is_whitespace() {
            pending_space = true;
        } else {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgnet_rdf::sparql::parse_select;
    use kgnet_rdf::Term;

    fn store() -> RdfStore {
        let mut st = RdfStore::new();
        for i in 0..5 {
            st.insert(Term::iri(format!("http://x/s{i}")), Term::iri("http://x/p"), Term::int(i));
        }
        st
    }

    fn parsed(text: &str) -> SelectQuery {
        parse_select(text).unwrap()
    }

    #[test]
    fn hit_on_repeat_and_whitespace_variants() {
        let st = store();
        let mut cache = PlanCache::new(8);
        let q = "SELECT ?s WHERE { ?s <http://x/p> ?o }";
        let a = cache.get_or_prepare(&st, q, parsed(q)).unwrap();
        let variant = "SELECT ?s  WHERE {\n  ?s <http://x/p> ?o\n}";
        let b = cache.get_or_prepare(&st, variant, parsed(variant)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "normalized variants must share one plan");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn literal_whitespace_is_significant() {
        // Two queries differing only inside a string literal must not share
        // a cache key — otherwise the second silently gets the first's plan
        // (and, for ground literals, the first's results).
        let mut st = RdfStore::new();
        st.insert(Term::iri("http://x/two"), Term::iri("http://x/t"), Term::str("a  b"));
        st.insert(Term::iri("http://x/one"), Term::iri("http://x/t"), Term::str("a b"));
        let mut cache = PlanCache::new(8);
        let two_spaces = r#"SELECT ?p WHERE { ?p <http://x/t> "a  b" }"#;
        let one_space = r#"SELECT ?p WHERE { ?p <http://x/t> "a b" }"#;
        assert_ne!(normalize(two_spaces), normalize(one_space));
        let a = cache.get_or_prepare(&st, two_spaces, parsed(two_spaces)).unwrap();
        let b = cache.get_or_prepare(&st, one_space, parsed(one_space)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 2);
        // Escaped quotes do not terminate the literal early.
        assert_eq!(normalize(r#"a "x\" y" b"#), r#"a "x\" y" b"#);
        // Whitespace outside literals still folds.
        assert_eq!(normalize("  a \n b  "), "a b");
    }

    #[test]
    fn generation_bump_invalidates() {
        let mut st = store();
        let mut cache = PlanCache::new(8);
        let q = "SELECT ?s WHERE { ?s <http://x/p> ?o }";
        let a = cache.get_or_prepare(&st, q, parsed(q)).unwrap();
        st.insert(Term::iri("http://x/new"), Term::iri("http://x/p"), Term::int(9));
        let b = cache.get_or_prepare(&st, q, parsed(q)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "write must invalidate the cached plan");
        assert_eq!(b.generation(), st.generation());
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let st = store();
        let mut cache = PlanCache::new(2);
        let q1 = "SELECT ?s WHERE { ?s <http://x/p> ?o } LIMIT 1";
        let q2 = "SELECT ?s WHERE { ?s <http://x/p> ?o } LIMIT 2";
        let q3 = "SELECT ?s WHERE { ?s <http://x/p> ?o } LIMIT 3";
        cache.get_or_prepare(&st, q1, parsed(q1)).unwrap();
        cache.get_or_prepare(&st, q2, parsed(q2)).unwrap();
        cache.get_or_prepare(&st, q1, parsed(q1)).unwrap(); // refresh q1
        cache.get_or_prepare(&st, q3, parsed(q3)).unwrap(); // evicts q2
        assert_eq!(cache.stats().entries, 2);
        cache.get_or_prepare(&st, q1, parsed(q1)).unwrap();
        assert_eq!(cache.stats().hits, 2, "q1 must still be cached");
        cache.get_or_prepare(&st, q2, parsed(q2)).unwrap();
        assert_eq!(cache.stats().misses, 4, "q2 must have been evicted");
    }
}
