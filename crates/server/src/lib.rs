//! # kgnet-server
//!
//! The concurrent serving layer of the KGNet platform: one shared data KG
//! published as generation-versioned MVCC snapshots, SELECT-serving
//! sessions that run in parallel against pinned versions, and an
//! admission-controlled queue that trains GML models in the background
//! without stalling queries — the "GML as a service under load" shape the
//! paper assumes of its platform.
//!
//! Architecture:
//!
//! ```text
//!   client threads                      KgServer
//!   ┌────────────┐ pin+query ┌────────────────────────────────┐
//!   │ ReadSession├──────────►│ SharedStore (versioned Arcs)   │ N readers,
//!   │  Snapshot  │           │   snapshot() ──► frozen vN     │ zero locks
//!   └────────────┘           │   begin()/commit ─► publish vN+1│
//!   ┌────────────┐  execute  │ SharedPlanCache ((query, vN))  │
//!   │WriteSession├──────────►│ QueryManager (RwLock)          │
//!   │  WriteTxn  │ commit/   │   KGMeta · InferenceService    │
//!   └────────────┘  abort    └───────────────┬────────────────┘
//!   submit_train ──► JobQueue ──► workers ───┘ register on success
//!                    (admission)   (pin snapshot, train, commit)
//! ```
//!
//! Training jobs pin a snapshot with zero lock hold, sample their task
//! subgraph from it, train on the private copy inside a dedicated thread
//! pool — polling the job's cancellation flag between epochs — and commit
//! in one cheap final step under the manager write lock: the artifact
//! (stamped with the generation it was trained against) lands in the
//! lock-free-to-readers [`ModelStore`](kgnet_gmlaas::ModelStore) and its
//! KGMeta registration adds a few metadata triples, together or not at
//! all. Queries keep flowing while models train and while writers commit;
//! a cancelled or failed job leaves both untouched.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod metrics;
pub mod pool;
pub mod queue;
mod report;
pub mod session;
pub mod slowlog;
mod witness;

pub use cache::{CacheStats, SharedPlanCache};
pub use metrics::{QueueObs, ServerMetrics, METRIC_CATALOG};
pub use pool::{PooledSession, SessionPool};
pub use queue::{
    AdmissionError, JobId, JobInfo, JobOutcome, JobQueue, JobRunner, JobState, QueueConfig,
    ResourceUsage, UsageProbe,
};
pub use session::{ReadSession, SessionStats, WriteSession};
pub use slowlog::{SlowQuery, SLOW_LOG_CAPACITY};

use slowlog::SlowQueryLog;

use kgnet_sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use kgnet_obs::{Histogram, SpanNode};
use kgnet_sync::RwLock;

use kgnet_gml::control::{EpochObserver, PairObserver, TrainControl};
use kgnet_gmlaas::{TrainError, TrainRequest, TrainingManager};
use kgnet_rdf::{RdfStore, SharedStore};
use kgnet_sampler::{meta_sample_task, SamplingScope};
use kgnet_sparqlml::{ManagerConfig, QueryManager};

/// Server tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Query-manager configuration (training defaults, optimizer bounds).
    pub manager: ManagerConfig,
    /// Training-queue sizing and admission policy.
    pub queue: QueueConfig,
    /// Plans held in the server-wide shared cache, across all read
    /// sessions and snapshot versions (0 uses the default of 128).
    pub plan_cache_capacity: usize,
    /// Latency threshold, in milliseconds, above which a SELECT is captured
    /// into the slow-query log with its rendered plan and span profile
    /// (0 uses the default of 100 ms).
    pub slow_query_millis: u64,
    /// Nanosecond-precision override of [`slow_query_millis`]
    /// (`Self::slow_query_millis`): when nonzero this is the capture
    /// threshold verbatim, for sub-millisecond SLOs.
    pub slow_query_nanos: u64,
}

const DEFAULT_PLAN_CACHE: usize = 128;
const DEFAULT_SLOW_QUERY_MILLIS: u64 = 100;

/// The concurrently servable platform: a snapshot-published data KG, a
/// shared SPARQL-ML manager, a server-wide plan cache and a background
/// training queue.
pub struct KgServer {
    store: SharedStore,
    manager: Arc<RwLock<QueryManager>>,
    queue: JobQueue,
    plan_cache: Arc<SharedPlanCache>,
    metrics: Arc<ServerMetrics>,
    slow_log: Arc<SlowQueryLog>,
}

impl KgServer {
    /// Serve a knowledge graph with custom configuration.
    pub fn new(data: RdfStore, config: ServerConfig) -> Self {
        let store = SharedStore::new(data);
        let manager = Arc::new(RwLock::new(QueryManager::new(config.manager)));
        let metrics = Arc::new(ServerMetrics::new());
        metrics.store_generation.set(store.generation() as i64);
        let trainer = witness::read(&manager).trainer().clone();
        let runner = train_runner(store.clone(), manager.clone(), trainer, Arc::clone(&metrics));
        let queue = JobQueue::with_metrics(config.queue, runner, metrics.queue_obs());
        let capacity = if config.plan_cache_capacity == 0 {
            DEFAULT_PLAN_CACHE
        } else {
            config.plan_cache_capacity
        };
        let slow_nanos = if config.slow_query_nanos > 0 {
            config.slow_query_nanos
        } else if config.slow_query_millis > 0 {
            config.slow_query_millis.saturating_mul(1_000_000)
        } else {
            DEFAULT_SLOW_QUERY_MILLIS * 1_000_000
        };
        KgServer {
            store,
            manager,
            queue,
            plan_cache: Arc::new(SharedPlanCache::new(capacity)),
            metrics,
            slow_log: Arc::new(SlowQueryLog::new(slow_nanos)),
        }
    }

    /// Serve a knowledge graph with default configuration.
    pub fn with_graph(data: RdfStore) -> Self {
        Self::new(data, ServerConfig::default())
    }

    /// The shared store handle (cloneable; snapshot pinning and write
    /// transactions).
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// The shared query manager (advanced use: KGMeta inspection, service
    /// statistics). Lock order when combining with an open write
    /// transaction: transaction (writer gate) first, manager second.
    pub fn manager(&self) -> Arc<RwLock<QueryManager>> {
        self.manager.clone()
    }

    /// Server-wide plan-cache counters (sessions report their own local
    /// hit/miss splits on top of these totals).
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    /// MVCC retention telemetry: every store version currently kept alive —
    /// the published version plus any older version pinned by a live
    /// [`ReadSession`] (or raw [`Snapshot`](kgnet_rdf::Snapshot)) — with
    /// per-version pin counts and approximate retained index bytes. An old
    /// version disappears from this list the moment its last pin drops.
    pub fn retained_versions(&self) -> Vec<kgnet_rdf::RetainedVersion> {
        self.store.retained_versions()
    }

    /// Open a concurrent read session pinned to the current snapshot.
    /// Sessions are independent — hand one to each client thread — and
    /// all share the server's plan cache.
    pub fn read_session(&self) -> ReadSession {
        ReadSession::new(
            self.store.clone(),
            self.manager.clone(),
            Arc::clone(&self.plan_cache),
            Arc::clone(&self.metrics),
            Arc::clone(&self.slow_log),
        )
    }

    /// Open a write session holding an open transaction on the next store
    /// version. Blocks while another write session is open (writers are
    /// serialised); never blocks or is blocked by readers. Call
    /// [`WriteSession::commit`] to publish — dropping the session discards
    /// its data mutations.
    pub fn write_session(&self) -> WriteSession {
        WriteSession::new(self.store.clone(), self.manager.clone(), Arc::clone(&self.metrics))
    }

    /// The server's metric catalog, with the store gauges (generation,
    /// retained versions/bytes) refreshed from the live store — and the
    /// system-wide profiles (lock-site counters, pool gauges, dropped-span
    /// total) harvested — so a subsequent
    /// [`ServerMetrics::render_prometheus`] or
    /// [`ServerMetrics::render_json`] reports current state.
    pub fn metrics(&self) -> &ServerMetrics {
        self.metrics.store_generation.set(self.store.generation() as i64);
        let retained = self.store.retained_versions();
        self.metrics.retained_versions.set(retained.len() as i64);
        let bytes: usize = retained.iter().map(|v| v.approx_bytes).sum();
        self.metrics.retained_bytes.set(i64::try_from(bytes).unwrap_or(i64::MAX));
        self.metrics.refresh_system();
        &self.metrics
    }

    /// A shared handle to the raw metric catalog, *without* refreshing the
    /// store gauges or harvesting system profiles — for hot paths (the
    /// HTTP frontend bumps its per-request counters through this) that
    /// must not pay the refresh walk per call. Exporters should prefer
    /// [`metrics`](Self::metrics).
    pub fn metrics_handle(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The retained slow-query records, oldest first: every SELECT whose
    /// latency crossed [`ServerConfig::slow_query_millis`], with the plan
    /// it ran and its span profile. At most [`SLOW_LOG_CAPACITY`] records
    /// are kept; older offenders are dropped as new ones arrive.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow_log.snapshot()
    }

    /// One human-readable report of the server's observable state: metric
    /// totals, the most contended lock sites, thread-pool utilization, the
    /// slow-query log and per-job resource usage. Built for dropping into
    /// a bug report or a terminal — nothing in it is machine-parsed.
    pub fn debug_report(&self) -> String {
        self.metrics();
        report::render(self)
    }

    pub(crate) fn slow_log(&self) -> &SlowQueryLog {
        &self.slow_log
    }

    /// Drain every span buffered since the last dump and rebuild the
    /// profile trees (children-first drain order), oldest roots first.
    pub fn trace_dump(&self) -> Vec<SpanNode> {
        SpanNode::assemble(&self.metrics.tracer().drain())
    }

    /// Submit a training job to the background queue. Returns immediately
    /// with a job id after admission (budget envelope, queue capacity).
    pub fn submit_train(&self, req: TrainRequest) -> Result<JobId, AdmissionError> {
        self.queue.submit(req)
    }

    /// Poll one job's lifecycle state.
    pub fn job(&self, id: JobId) -> Option<JobInfo> {
        self.queue.status(id)
    }

    /// Snapshot of every job still on record, ordered by id (terminal
    /// records past the retention cap, or dropped via
    /// [`forget`](Self::forget), are excluded).
    pub fn jobs(&self) -> Vec<JobInfo> {
        self.queue.jobs()
    }

    /// Request cancellation of a job: immediate when queued, within one
    /// training epoch when running (the flag is polled at every epoch
    /// boundary). `false` when unknown or already terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        self.queue.cancel(id)
    }

    /// Block until a job reaches a terminal state. `None` when the id is
    /// unknown — never submitted, or its terminal record already pruned or
    /// forgotten.
    pub fn wait(&self, id: JobId) -> Option<JobInfo> {
        self.queue.wait(id)
    }

    /// Drop a finished job's record once its outcome has been observed
    /// (ahead of the queue's automatic retention pruning). `false` when the
    /// id is unknown or the job is still live.
    pub fn forget(&self, id: JobId) -> bool {
        self.queue.forget(id)
    }

    /// One readiness probe for load balancers and the HTTP `/readyz`
    /// endpoint: the store must hold data and the training queue must have
    /// admission headroom. A server that would bounce the very next
    /// `submit_train` with `QueueFull` reports not-ready so traffic drains
    /// to a replica instead of piling onto a saturated queue.
    pub fn readiness(&self) -> Readiness {
        let store_loaded = !self.store.is_empty();
        let queue_headroom = self.queue.admission_headroom();
        Readiness { store_loaded, queue_headroom, ready: store_loaded && queue_headroom > 0 }
    }
}

/// Snapshot of the server's readiness signals (see
/// [`KgServer::readiness`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    /// The published store version holds at least one triple.
    pub store_loaded: bool,
    /// Training submissions the queue would still admit.
    pub queue_headroom: usize,
    /// Conjunction the probe reports: loaded and admitting.
    pub ready: bool,
}

/// The production job runner: pin a snapshot (zero lock hold), sample the
/// task subgraph from it, train on the private subgraph inside the
/// worker's dedicated pool with the job's cancellation flag threaded into
/// the trainer's epoch loop, then commit as the single final step —
/// registry insert and KGMeta registration land together under the
/// manager write lock, with the artifact stamped by the snapshot
/// generation it was trained against. Cancellation is observed between
/// epochs (a raised flag ends the run within one epoch) and re-checked
/// before the commit; until the commit the artifact exists only on the
/// worker's stack, so a cancelled or failed job leaves both the model
/// store and KGMeta exactly as they were.
/// Feeds per-epoch wall times into `kgnet_train_epoch_nanos`: each
/// [`epoch_completed`](EpochObserver::epoch_completed) records the time
/// since the previous one (or since training start for the first epoch).
struct EpochTimer {
    epochs: Arc<Histogram>,
    last: kgnet_sync::Mutex<Instant>,
}

impl EpochTimer {
    fn new(epochs: Arc<Histogram>) -> EpochTimer {
        EpochTimer { epochs, last: kgnet_sync::Mutex::new(Instant::now()) }
    }
}

impl EpochObserver for EpochTimer {
    fn epoch_completed(&self, _epoch: usize) {
        let now = Instant::now();
        let mut last = self.last.lock();
        let prev = std::mem::replace(&mut *last, now);
        self.epochs.record(u64::try_from((now - prev).as_nanos()).unwrap_or(u64::MAX));
    }
}

fn train_runner(
    store: SharedStore,
    manager: Arc<RwLock<QueryManager>>,
    trainer: TrainingManager,
    metrics: Arc<ServerMetrics>,
) -> Arc<JobRunner> {
    Arc::new(move |req, cancel, probe| {
        let scope = SamplingScope::parse(&req.sampler)
            .unwrap_or_else(|| SamplingScope::default_for(&req.task));
        let snapshot = store.snapshot();
        let sampled = meta_sample_task(&snapshot, &req.task, scope);
        probe.add_triples_sampled(sampled.store.len() as u64);
        if cancel.load(Ordering::SeqCst) {
            return JobOutcome::Cancelled;
        }
        let timer = EpochTimer::new(Arc::clone(&metrics.train_epoch));
        // The worker's probe rides along with the epoch-latency timer, so
        // per-job epoch counts come from the same notifications as the
        // epoch histogram.
        let pair = PairObserver::new(&timer, probe);
        let ctl = TrainControl::with_flag(cancel).with_observer(&pair);
        let (mut artifact, _trace) = match trainer.train_uncommitted_ctl(&sampled.store, req, ctl) {
            Ok(built) => built,
            Err(TrainError::Cancelled) => return JobOutcome::Cancelled,
            Err(e) => return JobOutcome::Failed(e.to_string()),
        };
        if cancel.load(Ordering::SeqCst) {
            return JobOutcome::Cancelled;
        }
        artifact.trained_generation = snapshot.generation();
        let mut guard = witness::write(&manager);
        let artifact = trainer.model_store().insert(artifact);
        guard.register_artifact(&artifact);
        JobOutcome::Done(artifact.uri.clone())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgnet_datagen::{generate_dblp, DblpConfig};
    use kgnet_gml::config::GnnConfig;
    use kgnet_graph::{GmlTask, NcTask};
    use kgnet_sparqlml::MlOutcome;

    fn fast_server(seed: u64) -> KgServer {
        let (kg, _) = generate_dblp(&DblpConfig::tiny(seed));
        let config = ServerConfig {
            manager: ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() },
            ..Default::default()
        };
        KgServer::new(kg, config)
    }

    fn nc_request(name: &str) -> TrainRequest {
        let mut req = TrainRequest::new(
            name,
            GmlTask::NodeClassification(NcTask {
                target_type: "https://www.dblp.org/Publication".into(),
                label_predicate: "https://www.dblp.org/publishedIn".into(),
            }),
        );
        req.cfg = GnnConfig::fast_test();
        req
    }

    const PV_QUERY: &str = r#"
        PREFIX dblp: <https://www.dblp.org/>
        PREFIX kgnet: <https://www.kgnet.com/>
        SELECT ?title ?venue WHERE {
          ?paper a dblp:Publication .
          ?paper dblp:title ?title .
          ?paper ?NodeClassifier ?venue .
          ?NodeClassifier a kgnet:NodeClassifier .
          ?NodeClassifier kgnet:TargetNode dblp:Publication .
          ?NodeClassifier kgnet:NodeLabel dblp:publishedIn . }"#;

    #[test]
    fn train_job_then_ml_select_through_read_session() {
        let server = fast_server(41);
        let id = server.submit_train(nc_request("paper-venue")).unwrap();
        let done = server.wait(id).unwrap();
        let JobState::Done { model_uri } = &done.state else { panic!("job failed: {done:?}") };
        assert!(model_uri.contains("/model/nc/"));

        let mut session = server.read_session();
        let rows = session.sparql(PV_QUERY).unwrap();
        assert_eq!(rows.len(), 60);
        // KGMeta visible through the session.
        let meta = session
            .sparql_kgmeta(
                "PREFIX kgnet: <https://www.kgnet.com/>
                 SELECT ?m WHERE { ?m a kgnet:NodeClassifier }",
            )
            .unwrap();
        assert_eq!(meta.len(), 1);
    }

    #[test]
    fn queued_artifact_is_stamped_with_its_snapshot_generation() {
        let server = fast_server(67);
        // Bump the published version first so the stamp is a non-trivial
        // generation.
        let mut writer = server.write_session();
        writer.execute("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> }").unwrap();
        writer.commit();
        let trained_against = server.store().generation();

        let id = server.submit_train(nc_request("stamped")).unwrap();
        let done = server.wait(id).unwrap();
        let JobState::Done { model_uri } = &done.state else { panic!("job failed: {done:?}") };

        let manager = server.manager();
        let artifact = manager.read().trainer().model_store().get(model_uri).unwrap();
        assert_eq!(artifact.trained_generation, trained_against);
        // The stamp is queryable through KGMeta (Fig. 7 metadata).
        let session = server.read_session();
        let rows = session
            .sparql_kgmeta(
                "PREFIX kgnet: <https://www.kgnet.com/>
                 SELECT ?m ?g WHERE { ?m kgnet:TrainedGeneration ?g }",
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows.rows[0][1].as_ref().unwrap().as_int(), Some(trained_against as i64));
    }

    #[test]
    fn read_session_pins_its_snapshot_until_refresh() {
        let server = fast_server(43);
        let mut session = server.read_session();
        let q = "PREFIX dblp: <https://www.dblp.org/> \
                 SELECT (COUNT(*) AS ?n) WHERE { ?p a dblp:Publication }";
        let first = session.sparql(q).unwrap();
        let second = session.sparql(q).unwrap();
        assert_eq!(first, second);
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        // A committed write does not perturb the pinned session: its plan
        // stays valid for its version and keeps hitting.
        let mut writer = server.write_session();
        writer
            .execute(
                "INSERT DATA { <http://x/extra> a <https://www.dblp.org/Publication> . \
                 <http://x/extra> <https://www.dblp.org/title> \"extra\" }",
            )
            .unwrap();
        writer.commit();
        let third = session.sparql(q).unwrap();
        assert_eq!(first, third, "pinned snapshot must not see the commit");
        assert_eq!(session.cache_stats().hits, 2);

        // Refresh re-pins onto the new version: one more plan compile, and
        // the count now includes the inserted publication.
        let pinned = session.generation();
        let refreshed = session.refresh();
        assert!(refreshed > pinned);
        let fourth = session.sparql(q).unwrap();
        assert_ne!(first, fourth, "refreshed session must see the commit");
        assert_eq!(session.cache_stats().misses, 2);
    }

    #[test]
    fn plan_cache_is_shared_across_sessions() {
        let server = fast_server(71);
        let q = "PREFIX dblp: <https://www.dblp.org/> \
                 SELECT (COUNT(*) AS ?n) WHERE { ?p a dblp:Publication }";
        let mut first = server.read_session();
        first.sparql(q).unwrap();
        assert_eq!((first.cache_stats().hits, first.cache_stats().misses), (0, 1));

        // A second session on the same version hits the plan the first one
        // compiled, without ever having prepared it itself.
        let mut second = server.read_session();
        second.sparql(q).unwrap();
        assert_eq!((second.cache_stats().hits, second.cache_stats().misses), (1, 0));

        // Server-wide totals aggregate both sessions.
        let total = server.plan_cache_stats();
        assert_eq!((total.hits, total.misses, total.entries), (1, 1, 1));
    }

    #[test]
    fn read_session_rejects_writes() {
        let server = fast_server(47);
        let mut session = server.read_session();
        let err =
            session.query("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> }").unwrap_err();
        assert!(matches!(err, kgnet_sparqlml::MlError::ReadOnly));
    }

    #[test]
    fn write_session_commit_publishes_and_abort_discards() {
        let server = fast_server(73);
        let before = server.store().generation();
        let len_before = server.store().len();

        // Abort path: the mutation is visible inside the session
        // (read-your-writes) but never published.
        let mut aborted = server.write_session();
        aborted.execute("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> }").unwrap();
        assert_eq!(aborted.store().len(), len_before + 1);
        aborted.abort();
        assert_eq!(server.store().generation(), before, "abort must not publish");
        assert_eq!(server.store().len(), len_before);

        // Drop path behaves identically to abort.
        {
            let mut dropped = server.write_session();
            dropped.with_store(|st| {
                st.insert(
                    kgnet_rdf::Term::iri("http://x/c"),
                    kgnet_rdf::Term::iri("http://x/p"),
                    kgnet_rdf::Term::iri("http://x/d"),
                );
            });
        }
        assert_eq!(server.store().len(), len_before, "drop must discard the pending version");

        // Commit path publishes atomically.
        let mut committed = server.write_session();
        assert_eq!(committed.base_generation(), before);
        committed.execute("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> }").unwrap();
        let published = committed.commit();
        assert!(published > before);
        assert_eq!(server.store().generation(), published);
        assert_eq!(server.store().len(), len_before + 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn lock_order_witness_panics_on_manager_before_gate() {
        // Wrong order on purpose: a (witnessed) manager guard is live when
        // the thread asks for the writer gate. The debug witness must turn
        // this latent AB–BA deadlock into an immediate panic.
        let server = fast_server(59);
        let manager = server.manager();
        let guard = crate::witness::read(&manager);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            drop(server.write_session());
        }));
        drop(guard);
        let Err(payload) = result else { panic!("gate-under-manager acquisition must panic") };
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default();
        assert!(msg.contains("lock-order violation"), "unexpected panic: {msg}");
        // The correct order still works on this very thread.
        let mut writer = server.write_session();
        writer.execute("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> }").unwrap();
        writer.commit();
    }

    #[test]
    fn retained_versions_surface_session_pins() {
        let server = fast_server(61);
        let base = server.store().generation();
        let session = server.read_session(); // pins the current version
        let mut writer = server.write_session();
        writer.execute("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> }").unwrap();
        writer.commit();

        let retained = server.retained_versions();
        assert_eq!(retained.len(), 2, "pinned old version + current: {retained:?}");
        assert_eq!(retained[0].generation, base);
        assert_eq!(retained[0].pins, 1);
        assert!(!retained[0].is_current);
        assert!(retained[1].is_current);

        drop(session);
        let retained = server.retained_versions();
        assert_eq!(retained.len(), 1, "dropping the session frees the old version");
        assert!(retained[0].is_current);
    }

    #[test]
    fn cancelled_queued_job_registers_nothing() {
        // The real training runner behind a gate: the single worker parks
        // inside `first` until the test releases it, so the cancel of
        // `second` deterministically lands while it is still queued (no
        // reliance on training being slower than the test thread).
        use std::sync::mpsc;
        use std::sync::Mutex;

        let (kg, _) = generate_dblp(&DblpConfig::tiny(53));
        let store = SharedStore::new(kg);
        let manager = Arc::new(RwLock::new(QueryManager::new(ManagerConfig {
            default_cfg: GnnConfig::fast_test(),
            ..Default::default()
        })));
        let trainer = manager.read().trainer().clone();
        let real = train_runner(store, manager, trainer.clone(), Arc::new(ServerMetrics::new()));
        let (started_tx, started_rx) = mpsc::channel();
        let (proceed_tx, proceed_rx) = mpsc::channel::<()>();
        let proceed = Mutex::new(proceed_rx);
        let gated: Arc<JobRunner> = Arc::new(move |req, cancel, probe| {
            started_tx.send(()).unwrap();
            proceed.lock().unwrap().recv().unwrap();
            real(req, cancel, probe)
        });
        let cfg = QueueConfig { max_concurrent: 1, ..Default::default() };
        let queue = JobQueue::new(cfg, gated);

        let running = queue.submit(nc_request("first")).unwrap();
        started_rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        let doomed = queue.submit(nc_request("second")).unwrap();
        assert!(queue.cancel(doomed), "cancel of the queued job must be acknowledged");
        assert_eq!(queue.status(doomed).unwrap().state, JobState::Cancelled);
        proceed_tx.send(()).unwrap();
        let first = queue.wait(running).unwrap();
        assert!(matches!(first.state, JobState::Done { .. }), "first job failed: {first:?}");
        assert_eq!(queue.wait(doomed).unwrap().state, JobState::Cancelled);
        assert_eq!(trainer.model_store().len(), 1, "cancelled job left a model");
    }

    #[test]
    fn cancelling_a_running_job_stops_it_mid_training() {
        // The job is configured with a training horizon far beyond what the
        // test would tolerate; the epoch-boundary cancellation checkpoint
        // must end it early, report Cancelled and register nothing.
        let server = fast_server(57);
        let mut req = nc_request("marathon");
        req.cfg = GnnConfig { epochs: 200_000, dropout: 0.0, ..GnnConfig::fast_test() };
        let id = server.submit_train(req).unwrap();
        // Wait until the worker has actually picked the job up.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            match server.job(id).map(|j| j.state) {
                Some(JobState::Running) => break,
                Some(JobState::Queued) => {
                    assert!(std::time::Instant::now() < deadline, "job never started running");
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                other => panic!("job reached {other:?} without being cancelled"),
            }
        }
        assert!(server.cancel(id));
        let finished = server.wait(id).unwrap();
        assert_eq!(finished.state, JobState::Cancelled);
        let manager = server.manager();
        assert_eq!(manager.read().trainer().model_store().len(), 0, "cancelled job left a model");
    }

    #[test]
    fn similarity_search_needs_no_store_access() {
        let server = fast_server(61);
        let mut writer = server.write_session();
        writer
            .execute(
                r#"PREFIX dblp: <https://www.dblp.org/>
                   PREFIX kgnet: <https://www.kgnet.com/>
                   INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                     {Name: 'paper-sim', GML-Task:{ TaskType: kgnet:NodeSimilarity,
                        TargetNode: dblp:Publication}})}"#,
            )
            .unwrap();
        writer.commit();
        let manager = server.manager();
        let (model_uri, probe) = {
            let guard = manager.read();
            let uri = guard.trainer().model_store().uris().pop().unwrap();
            let artifact = guard.trainer().model_store().get(&uri).unwrap();
            let kgnet_gmlaas::ArtifactPayload::NodeSimilarity { store } = &artifact.payload else {
                panic!("expected a similarity payload")
            };
            let probe = store.keys().next().unwrap().to_owned();
            (uri, probe)
        };
        let session = server.read_session();
        // Hold an open write transaction across the search: the similarity
        // path touches neither the store versions nor the writer gate, so
        // this cannot block or deadlock.
        let txn = server.store().begin();
        let hits = session.similar_nodes(&model_uri, &probe, 3).unwrap();
        txn.abort();
        assert!(!hits.is_empty());
        assert_eq!(hits[0].0, probe, "self-query must rank the probe node first");
        assert!(session.similar_nodes(&model_uri, "http://nope/x", 3).unwrap().is_empty());
        let err = session.similar_nodes("http://kgnet/nope", &probe, 3).unwrap_err();
        assert!(matches!(err, kgnet_sparqlml::MlError::Service(_)));
    }

    #[test]
    fn write_session_trains_synchronously_via_sparql_ml() {
        let server = fast_server(59);
        let mut writer = server.write_session();
        let out = writer
            .execute(
                r#"PREFIX dblp: <https://www.dblp.org/>
                   PREFIX kgnet: <https://www.kgnet.com/>
                   INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                     {Name: 'pv', GML-Task:{ TaskType: kgnet:NodeClassifier,
                        TargetNode: dblp:Publication, NodeLabel: dblp:publishedIn},
                      Method: 'GCN'})}"#,
            )
            .unwrap();
        writer.commit();
        assert!(matches!(out, MlOutcome::Trained(_)));
        let mut session = server.read_session();
        assert_eq!(session.sparql(PV_QUERY).unwrap().len(), 60);
    }
}
