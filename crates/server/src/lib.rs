//! # kgnet-server
//!
//! The concurrent serving layer of the KGNet platform: one shared data KG
//! behind a read/write split, SELECT-serving sessions that run in parallel,
//! and an admission-controlled queue that trains GML models in the
//! background without stalling queries — the "GML as a service under load"
//! shape the paper assumes of its platform.
//!
//! Architecture:
//!
//! ```text
//!   client threads                     KgServer
//!   ┌────────────┐  query   ┌───────────────────────────────┐
//!   │ ReadSession├─────────►│ SharedStore (RwLock<RdfStore>) │  N readers
//!   │  plan LRU  │          │ QueryManager (RwLock)          │  in parallel
//!   └────────────┘          │   KGMeta · InferenceService    │
//!   ┌────────────┐  execute │                               │
//!   │WriteSession├─────────►│  exclusive side                │
//!   └────────────┘          └───────────────┬───────────────┘
//!   submit_train ──► JobQueue ──► workers ──┘ register on success
//!                    (admission)   (dedicated rayon pools)
//! ```
//!
//! Training jobs sample their task subgraph under a brief read lock, train
//! on the private copy inside a dedicated thread pool, and commit in one
//! cheap final step under the manager write lock: the artifact lands in the
//! lock-free-to-readers [`ModelStore`](kgnet_gmlaas::ModelStore) (readers
//! only clone an `Arc`) and its KGMeta registration adds a few metadata
//! triples, together or not at all. Queries therefore keep flowing while
//! models train, and a cancelled or failed job leaves both untouched.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod queue;
pub mod session;

pub use cache::{CacheStats, PlanCache};
pub use queue::{
    AdmissionError, JobId, JobInfo, JobOutcome, JobQueue, JobRunner, JobState, QueueConfig,
};
pub use session::{ReadSession, WriteSession};

use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::RwLock;

use kgnet_gmlaas::{TrainRequest, TrainingManager};
use kgnet_rdf::{RdfStore, SharedStore};
use kgnet_sampler::{meta_sample_task, SamplingScope};
use kgnet_sparqlml::{ManagerConfig, QueryManager};

/// Server tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Query-manager configuration (training defaults, optimizer bounds).
    pub manager: ManagerConfig,
    /// Training-queue sizing and admission policy.
    pub queue: QueueConfig,
    /// Plans cached per read session (0 uses the default of 64).
    pub plan_cache_capacity: usize,
}

const DEFAULT_PLAN_CACHE: usize = 64;

/// The concurrently servable platform: a shared data KG, a shared SPARQL-ML
/// manager, and a background training queue.
pub struct KgServer {
    store: SharedStore,
    manager: Arc<RwLock<QueryManager>>,
    queue: JobQueue,
    plan_cache_capacity: usize,
}

impl KgServer {
    /// Serve a knowledge graph with custom configuration.
    pub fn new(data: RdfStore, config: ServerConfig) -> Self {
        let store = SharedStore::new(data);
        let manager = Arc::new(RwLock::new(QueryManager::new(config.manager)));
        let trainer = manager.read().trainer().clone();
        let runner = train_runner(store.clone(), manager.clone(), trainer);
        let queue = JobQueue::new(config.queue, runner);
        let plan_cache_capacity = if config.plan_cache_capacity == 0 {
            DEFAULT_PLAN_CACHE
        } else {
            config.plan_cache_capacity
        };
        KgServer { store, manager, queue, plan_cache_capacity }
    }

    /// Serve a knowledge graph with default configuration.
    pub fn with_graph(data: RdfStore) -> Self {
        Self::new(data, ServerConfig::default())
    }

    /// The shared store handle (cloneable; reads never block each other).
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// The shared query manager (advanced use: KGMeta inspection, service
    /// statistics). Lock order when combining with store access: manager
    /// first, store second.
    pub fn manager(&self) -> Arc<RwLock<QueryManager>> {
        self.manager.clone()
    }

    /// Open a concurrent read session with its own plan cache. Sessions are
    /// independent: hand one to each client thread.
    pub fn read_session(&self) -> ReadSession {
        ReadSession::new(self.store.clone(), self.manager.clone(), self.plan_cache_capacity)
    }

    /// Open an exclusive write session for data updates and model deletion.
    pub fn write_session(&self) -> WriteSession {
        WriteSession::new(self.store.clone(), self.manager.clone())
    }

    /// Submit a training job to the background queue. Returns immediately
    /// with a job id after admission (budget envelope, queue capacity).
    pub fn submit_train(&self, req: TrainRequest) -> Result<JobId, AdmissionError> {
        self.queue.submit(req)
    }

    /// Poll one job's lifecycle state.
    pub fn job(&self, id: JobId) -> Option<JobInfo> {
        self.queue.status(id)
    }

    /// Snapshot of every job still on record, ordered by id (terminal
    /// records past the retention cap, or dropped via
    /// [`forget`](Self::forget), are excluded).
    pub fn jobs(&self) -> Vec<JobInfo> {
        self.queue.jobs()
    }

    /// Request cancellation of a job (immediate when queued, checkpointed
    /// when running). `false` when unknown or already terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        self.queue.cancel(id)
    }

    /// Block until a job reaches a terminal state. `None` when the id is
    /// unknown — never submitted, or its terminal record already pruned or
    /// forgotten.
    pub fn wait(&self, id: JobId) -> Option<JobInfo> {
        self.queue.wait(id)
    }

    /// Drop a finished job's record once its outcome has been observed
    /// (ahead of the queue's automatic retention pruning). `false` when the
    /// id is unknown or the job is still live.
    pub fn forget(&self, id: JobId) -> bool {
        self.queue.forget(id)
    }
}

/// The production job runner: sample under a read lock, train on the
/// private subgraph inside the worker's dedicated pool, then commit as the
/// single final step — registry insert and KGMeta registration land
/// together under the manager write lock. Cancellation is checkpointed
/// after sampling and again after training; until the commit the artifact
/// exists only on the worker's stack, so a cancelled or failed job leaves
/// both the model store and KGMeta exactly as they were.
fn train_runner(
    store: SharedStore,
    manager: Arc<RwLock<QueryManager>>,
    trainer: TrainingManager,
) -> Arc<JobRunner> {
    Arc::new(move |req, cancel| {
        let scope = SamplingScope::parse(&req.sampler)
            .unwrap_or_else(|| SamplingScope::default_for(&req.task));
        let sampled = {
            let guard = store.read();
            meta_sample_task(&guard, &req.task, scope)
        };
        if cancel.load(Ordering::SeqCst) {
            return JobOutcome::Cancelled;
        }
        let (artifact, _trace) = match trainer.train_uncommitted(&sampled.store, req) {
            Ok(built) => built,
            Err(e) => return JobOutcome::Failed(e.to_string()),
        };
        if cancel.load(Ordering::SeqCst) {
            return JobOutcome::Cancelled;
        }
        let mut guard = manager.write();
        let artifact = trainer.model_store().insert(artifact);
        guard.register_artifact(&artifact);
        JobOutcome::Done(artifact.uri.clone())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgnet_datagen::{generate_dblp, DblpConfig};
    use kgnet_gml::config::GnnConfig;
    use kgnet_graph::{GmlTask, NcTask};
    use kgnet_sparqlml::MlOutcome;

    fn fast_server(seed: u64) -> KgServer {
        let (kg, _) = generate_dblp(&DblpConfig::tiny(seed));
        let config = ServerConfig {
            manager: ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() },
            ..Default::default()
        };
        KgServer::new(kg, config)
    }

    fn nc_request(name: &str) -> TrainRequest {
        let mut req = TrainRequest::new(
            name,
            GmlTask::NodeClassification(NcTask {
                target_type: "https://www.dblp.org/Publication".into(),
                label_predicate: "https://www.dblp.org/publishedIn".into(),
            }),
        );
        req.cfg = GnnConfig::fast_test();
        req
    }

    const PV_QUERY: &str = r#"
        PREFIX dblp: <https://www.dblp.org/>
        PREFIX kgnet: <https://www.kgnet.com/>
        SELECT ?title ?venue WHERE {
          ?paper a dblp:Publication .
          ?paper dblp:title ?title .
          ?paper ?NodeClassifier ?venue .
          ?NodeClassifier a kgnet:NodeClassifier .
          ?NodeClassifier kgnet:TargetNode dblp:Publication .
          ?NodeClassifier kgnet:NodeLabel dblp:publishedIn . }"#;

    #[test]
    fn train_job_then_ml_select_through_read_session() {
        let server = fast_server(41);
        let id = server.submit_train(nc_request("paper-venue")).unwrap();
        let done = server.wait(id).unwrap();
        let JobState::Done { model_uri } = &done.state else { panic!("job failed: {done:?}") };
        assert!(model_uri.contains("/model/nc/"));

        let mut session = server.read_session();
        let rows = session.sparql(PV_QUERY).unwrap();
        assert_eq!(rows.len(), 60);
        // KGMeta visible through the session.
        let meta = session
            .sparql_kgmeta(
                "PREFIX kgnet: <https://www.kgnet.com/>
                 SELECT ?m WHERE { ?m a kgnet:NodeClassifier }",
            )
            .unwrap();
        assert_eq!(meta.len(), 1);
    }

    #[test]
    fn read_session_caches_plain_select_plans() {
        let server = fast_server(43);
        let mut session = server.read_session();
        let q = "PREFIX dblp: <https://www.dblp.org/> \
                 SELECT (COUNT(*) AS ?n) WHERE { ?p a dblp:Publication }";
        let first = session.sparql(q).unwrap();
        let second = session.sparql(q).unwrap();
        assert_eq!(first, second);
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        // A write through the write session invalidates the plan.
        server
            .write_session()
            .execute("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> }")
            .unwrap();
        let third = session.sparql(q).unwrap();
        assert_eq!(first, third);
        assert_eq!(session.cache_stats().misses, 2);
    }

    #[test]
    fn read_session_rejects_writes() {
        let server = fast_server(47);
        let mut session = server.read_session();
        let err =
            session.query("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> }").unwrap_err();
        assert!(matches!(err, kgnet_sparqlml::MlError::ReadOnly));
    }

    #[test]
    fn cancelled_queued_job_registers_nothing() {
        // The real training runner behind a gate: the single worker parks
        // inside `first` until the test releases it, so the cancel of
        // `second` deterministically lands while it is still queued (no
        // reliance on training being slower than the test thread).
        use std::sync::mpsc;
        use std::sync::Mutex;

        let (kg, _) = generate_dblp(&DblpConfig::tiny(53));
        let store = SharedStore::new(kg);
        let manager = Arc::new(RwLock::new(QueryManager::new(ManagerConfig {
            default_cfg: GnnConfig::fast_test(),
            ..Default::default()
        })));
        let trainer = manager.read().trainer().clone();
        let real = train_runner(store, manager, trainer.clone());
        let (started_tx, started_rx) = mpsc::channel();
        let (proceed_tx, proceed_rx) = mpsc::channel::<()>();
        let proceed = Mutex::new(proceed_rx);
        let gated: Arc<JobRunner> = Arc::new(move |req, cancel| {
            started_tx.send(()).unwrap();
            proceed.lock().unwrap().recv().unwrap();
            real(req, cancel)
        });
        let cfg = QueueConfig { max_concurrent: 1, ..Default::default() };
        let queue = JobQueue::new(cfg, gated);

        let running = queue.submit(nc_request("first")).unwrap();
        started_rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        let doomed = queue.submit(nc_request("second")).unwrap();
        assert!(queue.cancel(doomed), "cancel of the queued job must be acknowledged");
        assert_eq!(queue.status(doomed).unwrap().state, JobState::Cancelled);
        proceed_tx.send(()).unwrap();
        let first = queue.wait(running).unwrap();
        assert!(matches!(first.state, JobState::Done { .. }), "first job failed: {first:?}");
        assert_eq!(queue.wait(doomed).unwrap().state, JobState::Cancelled);
        assert_eq!(trainer.model_store().len(), 1, "cancelled job left a model");
    }

    #[test]
    fn similarity_search_needs_no_store_lock() {
        let server = fast_server(61);
        server
            .write_session()
            .execute(
                r#"PREFIX dblp: <https://www.dblp.org/>
                   PREFIX kgnet: <https://www.kgnet.com/>
                   INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                     {Name: 'paper-sim', GML-Task:{ TaskType: kgnet:NodeSimilarity,
                        TargetNode: dblp:Publication}})}"#,
            )
            .unwrap();
        let manager = server.manager();
        let (model_uri, probe) = {
            let guard = manager.read();
            let uri = guard.trainer().model_store().uris().pop().unwrap();
            let artifact = guard.trainer().model_store().get(&uri).unwrap();
            let kgnet_gmlaas::ArtifactPayload::NodeSimilarity { store } = &artifact.payload else {
                panic!("expected a similarity payload")
            };
            let probe = store.keys().next().unwrap().to_owned();
            (uri, probe)
        };
        let session = server.read_session();
        // Hold the data store's *exclusive* lock across the search: the
        // similarity path must not touch it, so this cannot deadlock.
        let store_guard = server.store().write();
        let hits = session.similar_nodes(&model_uri, &probe, 3).unwrap();
        drop(store_guard);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].0, probe, "self-query must rank the probe node first");
        assert!(session.similar_nodes(&model_uri, "http://nope/x", 3).unwrap().is_empty());
        let err = session.similar_nodes("http://kgnet/nope", &probe, 3).unwrap_err();
        assert!(matches!(err, kgnet_sparqlml::MlError::Service(_)));
    }

    #[test]
    fn write_session_trains_synchronously_via_sparql_ml() {
        let server = fast_server(59);
        let out = server
            .write_session()
            .execute(
                r#"PREFIX dblp: <https://www.dblp.org/>
                   PREFIX kgnet: <https://www.kgnet.com/>
                   INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                     {Name: 'pv', GML-Task:{ TaskType: kgnet:NodeClassifier,
                        TargetNode: dblp:Publication, NodeLabel: dblp:publishedIn},
                      Method: 'GCN'})}"#,
            )
            .unwrap();
        assert!(matches!(out, MlOutcome::Trained(_)));
        let mut session = server.read_session();
        assert_eq!(session.sparql(PV_QUERY).unwrap().len(), 60);
    }
}
