//! Read and write sessions over one shared platform.
//!
//! A [`ReadSession`] evaluates plain SPARQL and SPARQL-ML SELECTs through
//! shared borrows only (`&QueryManager`, `&RdfStore`), so any number of
//! sessions — one per client thread — run concurrently against the same
//! [`SharedStore`]. Each session carries its own [`PlanCache`], keyed by
//! the lexer's token stream and the store generation, so a repeated query
//! skips parsing *and* planning until a write invalidates it.
//!
//! A [`WriteSession`] takes the exclusive side of both the manager and the
//! store for data updates and model deletion. Lock order is fixed —
//! *manager before store* — everywhere in this crate, which rules out
//! lock-order deadlocks between sessions and training jobs.

use std::sync::Arc;

use parking_lot::RwLock;

use kgnet_gmlaas::{ArtifactPayload, ServiceError};
use kgnet_rdf::sparql::evaluate_prepared;
use kgnet_rdf::{QueryResult, RdfStore, SharedStore, SparqlError};
use kgnet_sparqlml::{
    contains_traingml, parse, MlError, MlOutcome, QueryManager, SparqlMlOperation,
};

use crate::cache::{CacheStats, PlanCache};

/// A concurrent read handle: SELECT-only execution with plan caching.
pub struct ReadSession {
    store: SharedStore,
    manager: Arc<RwLock<QueryManager>>,
    cache: PlanCache,
}

impl ReadSession {
    pub(crate) fn new(
        store: SharedStore,
        manager: Arc<RwLock<QueryManager>>,
        plan_cache_capacity: usize,
    ) -> Self {
        ReadSession { store, manager, cache: PlanCache::new(plan_cache_capacity) }
    }

    /// Execute a plain or SPARQL-ML SELECT. Updates, `TrainGML` and model
    /// DELETEs are rejected with [`MlError::ReadOnly`] — use a
    /// [`WriteSession`] or the server's training queue.
    ///
    /// Plain SELECTs run through this session's plan cache — a hit skips
    /// re-parsing as well as re-planning; ML SELECTs are optimized per call
    /// (their rewriting depends on live KGMeta state) but still execute
    /// through shared borrows end-to-end.
    pub fn query(&mut self, text: &str) -> Result<MlOutcome, MlError> {
        // Fast path: only plain SELECTs are ever cached, and the key is the
        // token stream classification is a pure function of, so a hit
        // proves this text parses to the cached plan's query. The one
        // exception is `contains_traingml` — `parse` applies it to *raw*
        // text (comments included) before tokenizing — so apply the same
        // gate first.
        if !contains_traingml(text) {
            let store = self.store.read();
            if let Some(prepared) = self.cache.get(&store, text) {
                let (rows, _) = evaluate_prepared(&store, &prepared)?;
                return Ok(MlOutcome::Rows(rows));
            }
        }
        match parse(text)? {
            SparqlMlOperation::PlainSelect(q) => {
                let store = self.store.read();
                let prepared = self.cache.prepare_insert(&store, text, q)?;
                let (rows, _) = evaluate_prepared(&store, &prepared)?;
                Ok(MlOutcome::Rows(rows))
            }
            SparqlMlOperation::Select(q) => {
                // Lock order: manager, then store.
                let manager = self.manager.read();
                let store = self.store.read();
                manager.query_select(&store, q)
            }
            SparqlMlOperation::PlainUpdate(_)
            | SparqlMlOperation::Train(_)
            | SparqlMlOperation::DeleteModels(_) => Err(MlError::ReadOnly),
        }
    }

    /// Execute a SELECT and return its rows (errors on non-row outcomes).
    pub fn sparql(&mut self, text: &str) -> Result<QueryResult, MlError> {
        match self.query(text)? {
            MlOutcome::Rows(rows) => Ok(rows),
            other => {
                Err(MlError::Sparql(SparqlError::eval(format!("expected rows, got {other:?}"))))
            }
        }
    }

    /// Query the KGMeta metadata graph (plain SPARQL over model metadata).
    pub fn sparql_kgmeta(&self, text: &str) -> Result<QueryResult, SparqlError> {
        let q = kgnet_rdf::sparql::parse_select(text)?;
        let manager = self.manager.read();
        kgnet_rdf::sparql::evaluate_select(manager.kgmeta().store(), &q)
    }

    /// Top-k entity-similarity search against a trained NodeSimilarity
    /// model, served *without* touching the data-store lock: the manager
    /// read lock is held only long enough to clone the artifact's `Arc`
    /// out of the lock-free-to-readers model registry, then the search
    /// runs against that shared immutable ANN index — concurrent readers
    /// and even the exclusive write session never wait on it.
    pub fn similar_nodes(
        &self,
        model_uri: &str,
        node: &str,
        k: usize,
    ) -> Result<Vec<(String, f32)>, MlError> {
        let artifact = {
            let manager = self.manager.read();
            manager.trainer().model_store().get(model_uri)
        };
        let Some(artifact) = artifact else {
            return Err(MlError::Service(ServiceError::ModelNotFound(model_uri.to_owned())));
        };
        let ArtifactPayload::NodeSimilarity { store } = &artifact.payload else {
            return Err(MlError::Service(ServiceError::WrongTask(format!(
                "{model_uri} is not a similarity model"
            ))));
        };
        let Some(query) = store.get(node) else { return Ok(Vec::new()) };
        let q = query.to_vec();
        Ok(store.search(&q, k, 4))
    }

    /// Hit/miss counters of this session's plan cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The shared store handle (for generation checks and direct scans).
    pub fn store(&self) -> &SharedStore {
        &self.store
    }
}

/// An exclusive write handle: data updates, synchronous `TrainGML` and
/// model deletion.
pub struct WriteSession {
    store: SharedStore,
    manager: Arc<RwLock<QueryManager>>,
}

impl WriteSession {
    pub(crate) fn new(store: SharedStore, manager: Arc<RwLock<QueryManager>>) -> Self {
        WriteSession { store, manager }
    }

    /// Execute any SPARQL-ML operation under exclusive locks. Note that a
    /// `TrainGML` here trains *synchronously while holding the write locks*,
    /// stalling every reader; concurrent serving should submit training
    /// through the server's job queue instead.
    pub fn execute(&self, text: &str) -> Result<MlOutcome, MlError> {
        // Lock order: manager, then store.
        let mut manager = self.manager.write();
        let mut store = self.store.write();
        manager.update(&mut store, text)
    }

    /// Run a closure with exclusive store access (bulk loads, manual
    /// asserts). Mutations bump the store generation, invalidating plan
    /// caches and predicate statistics.
    pub fn with_store<R>(&self, f: impl FnOnce(&mut RdfStore) -> R) -> R {
        f(&mut self.store.write())
    }
}
