//! Read and write sessions over one shared platform.
//!
//! A [`ReadSession`] *pins* an MVCC [`Snapshot`] when it opens and
//! evaluates every plain SPARQL and SPARQL-ML SELECT against that frozen
//! version with zero store locks held — concurrent writers commit new
//! versions without ever blocking it, and the session's results are
//! repeatable until it chooses to [`refresh`](ReadSession::refresh) onto
//! the latest version. Plans come from the server-wide
//! [`SharedPlanCache`], keyed by the lexer's token stream and the pinned
//! snapshot's generation, so a query planned by any session serves all
//! sessions on the same version; each session keeps its own hit/miss
//! counters on top of the shared totals.
//!
//! A [`WriteSession`] owns a [`WriteTxn`]: it batches data mutations into
//! a private next version and publishes them in one atomic
//! [`commit`](WriteSession::commit); [`abort`](WriteSession::abort) (or
//! just dropping the session) discards the pending version and no reader
//! ever sees it. Writers are serialised against each other by the store's
//! writer gate but never block readers. One caveat is inherited from the
//! manager: SPARQL-ML *model* operations (`TrainGML`, model DELETE) act on
//! the shared model registry and KGMeta immediately, not transactionally —
//! only *data* triples ride the commit/abort cycle.
//!
//! Lock order is fixed — *writer gate, then manager* — everywhere in this
//! crate, which rules out lock-order deadlocks between sessions and
//! training jobs.

use std::sync::Arc;
use std::time::Instant;

use kgnet_obs::SpanNode;
use kgnet_sync::RwLock;

use kgnet_gmlaas::{ArtifactPayload, SearchParams, ServiceError};
use kgnet_rdf::sparql::{evaluate_prepared, evaluate_prepared_profiled, PreparedQuery};
use kgnet_rdf::{ExecStats, QueryResult, RdfStore, SharedStore, Snapshot, SparqlError, WriteTxn};
use kgnet_sparqlml::{
    contains_traingml, parse, MlError, MlOutcome, QueryManager, SparqlMlOperation,
};

use crate::cache::{CacheStats, SharedPlanCache};
use crate::metrics::{nanos_since, ServerMetrics};
use crate::slowlog::{SlowQuery, SlowQueryLog};
use crate::witness;

/// Per-session resource totals, accumulated across every SELECT the
/// session executed (plain and SPARQL-ML alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// SELECTs executed to completion (errors not counted).
    pub queries: u64,
    /// Result rows returned across all of them.
    pub rows: u64,
    /// Triples scanned across all plain SELECTs (ML SELECT scan volume is
    /// internal to the manager's rewrite and not attributed here).
    pub triples_scanned: u64,
    /// Time this session's thread spent blocked on contended facade locks
    /// inside `query`/`query_profiled` calls.
    pub lock_wait_nanos: u64,
}

/// A concurrent read handle: SELECT-only execution against a pinned
/// snapshot, with shared plan caching.
pub struct ReadSession {
    snapshot: Snapshot,
    store: SharedStore,
    manager: Arc<RwLock<QueryManager>>,
    cache: Arc<SharedPlanCache>,
    metrics: Arc<ServerMetrics>,
    slow_log: Arc<SlowQueryLog>,
    stats: SessionStats,
    hits: u64,
    misses: u64,
}

impl ReadSession {
    pub(crate) fn new(
        store: SharedStore,
        manager: Arc<RwLock<QueryManager>>,
        cache: Arc<SharedPlanCache>,
        metrics: Arc<ServerMetrics>,
        slow_log: Arc<SlowQueryLog>,
    ) -> Self {
        ReadSession {
            snapshot: store.snapshot(),
            store,
            manager,
            cache,
            metrics,
            slow_log,
            stats: SessionStats::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// Record one finished plain-SELECT evaluation into the server metrics
    /// (end-to-end latency, result width, scan volume) and the session
    /// totals. Returns the measured latency so callers can reuse it for
    /// slow-query classification without re-reading the clock.
    fn record_select(&mut self, t0: Instant, rows: &QueryResult, stats: &ExecStats) -> u64 {
        let total = nanos_since(t0);
        self.metrics.query_latency.record(total);
        self.metrics.query_rows.record(rows.len() as u64);
        self.metrics.query_triples_scanned.add(stats.triples_scanned);
        self.stats.queries += 1;
        self.stats.rows += rows.len() as u64;
        self.stats.triples_scanned += stats.triples_scanned;
        total
    }

    /// Capture `text` into the server's slow-query log when its latency
    /// crossed the threshold: the rendered plan it ran (against this
    /// session's snapshot) plus the span profile — the full operator tree
    /// when one was measured, a single root span otherwise.
    fn maybe_log_slow(
        &self,
        text: &str,
        prepared: &PreparedQuery,
        total_nanos: u64,
        rows: u64,
        triples_scanned: u64,
        profile: Option<&SpanNode>,
    ) {
        if total_nanos < self.slow_log.threshold_nanos() {
            return;
        }
        self.metrics.slow_queries.inc();
        self.slow_log.record(SlowQuery {
            text: text.to_owned(),
            total_nanos,
            rows,
            triples_scanned,
            plan: prepared.explain(&self.snapshot),
            profile: profile.cloned().unwrap_or_else(|| SpanNode::new("query", total_nanos, rows)),
        });
    }

    /// Slow-query capture for SPARQL-ML SELECTs, which have no prepared
    /// physical plan to render: the record is text-only — a marker plan
    /// string plus a single root span — so slow ML rewrites still show up
    /// in `/slowlog` next to their plain-SPARQL peers.
    fn maybe_log_slow_ml(&self, text: &str, total_nanos: u64, rows: u64) {
        if total_nanos < self.slow_log.threshold_nanos() {
            return;
        }
        self.metrics.slow_queries.inc();
        self.slow_log.record(SlowQuery {
            text: text.to_owned(),
            total_nanos,
            rows,
            triples_scanned: 0,
            plan: "(sparql-ml: no physical plan)".to_owned(),
            profile: SpanNode::new("sparql-ml", total_nanos, rows),
        });
    }

    /// Execute a plain or SPARQL-ML SELECT against the pinned snapshot.
    /// Updates, `TrainGML` and model DELETEs are rejected with
    /// [`MlError::ReadOnly`] — use a [`WriteSession`] or the server's
    /// training queue.
    ///
    /// Plain SELECTs run through the shared plan cache — a hit skips
    /// re-parsing as well as re-planning; ML SELECTs are optimized per call
    /// (their rewriting depends on live KGMeta state) but still execute
    /// lock-free against the snapshot.
    pub fn query(&mut self, text: &str) -> Result<MlOutcome, MlError> {
        let wait0 = kgnet_sync::profile::thread_wait_nanos();
        let out = self.query_inner(text);
        self.stats.lock_wait_nanos +=
            kgnet_sync::profile::thread_wait_nanos().saturating_sub(wait0);
        out
    }

    fn query_inner(&mut self, text: &str) -> Result<MlOutcome, MlError> {
        let metrics = Arc::clone(&self.metrics);
        let _span = metrics.span("read.query");
        let t0 = Instant::now();
        // Fast path: only plain SELECTs are ever cached, and the key is the
        // token stream classification is a pure function of, so a hit
        // proves this text parses to the cached plan's query. The one
        // exception is `contains_traingml` — `parse` applies it to *raw*
        // text (comments included) before tokenizing — so apply the same
        // gate first.
        if !contains_traingml(text) {
            if let Some(prepared) = self.cache.get(self.snapshot.generation(), text) {
                self.hits += 1;
                self.metrics.plan_cache_hits.inc();
                let (rows, stats) = evaluate_prepared(&self.snapshot, &prepared)?;
                let total = self.record_select(t0, &rows, &stats);
                self.maybe_log_slow(
                    text,
                    &prepared,
                    total,
                    rows.len() as u64,
                    stats.triples_scanned,
                    None,
                );
                return Ok(MlOutcome::Rows(rows));
            }
        }
        match parse(text)? {
            SparqlMlOperation::PlainSelect(q) => {
                let prepared = self.cache.prepare_insert(&self.snapshot, text, q)?;
                self.misses += 1;
                self.metrics.plan_cache_misses.inc();
                let (rows, stats) = evaluate_prepared(&self.snapshot, &prepared)?;
                let total = self.record_select(t0, &rows, &stats);
                self.maybe_log_slow(
                    text,
                    &prepared,
                    total,
                    rows.len() as u64,
                    stats.triples_scanned,
                    None,
                );
                Ok(MlOutcome::Rows(rows))
            }
            SparqlMlOperation::Select(q) => {
                let out = {
                    let manager = witness::read(&self.manager);
                    manager.query_select(&self.snapshot, q)
                };
                if let Ok(MlOutcome::Rows(rows)) = &out {
                    let total = nanos_since(t0);
                    self.metrics.query_latency.record(total);
                    self.metrics.query_rows.record(rows.len() as u64);
                    self.stats.queries += 1;
                    self.stats.rows += rows.len() as u64;
                    self.maybe_log_slow_ml(text, total, rows.len() as u64);
                }
                out
            }
            SparqlMlOperation::PlainUpdate(_)
            | SparqlMlOperation::Train(_)
            | SparqlMlOperation::DeleteModels(_) => Err(MlError::ReadOnly),
        }
    }

    /// Execute a SELECT with per-operator profiling: the rows plus a span
    /// tree whose root covers the end-to-end evaluation and whose children
    /// carry per-operator *self* times and row counts, so the children's
    /// nanos sum exactly to the root's. Plain SELECTs ride the shared plan
    /// cache like [`query`](Self::query) and are profiled operator by
    /// operator; SPARQL-ML SELECTs (whose rewrite is opaque to the plain
    /// planner) report a single `sparql-ml` node. Updates and `TrainGML`
    /// are rejected with [`MlError::ReadOnly`].
    pub fn query_profiled(&mut self, text: &str) -> Result<(QueryResult, SpanNode), MlError> {
        let wait0 = kgnet_sync::profile::thread_wait_nanos();
        let out = self.query_profiled_inner(text);
        self.stats.lock_wait_nanos +=
            kgnet_sync::profile::thread_wait_nanos().saturating_sub(wait0);
        out
    }

    fn query_profiled_inner(&mut self, text: &str) -> Result<(QueryResult, SpanNode), MlError> {
        let metrics = Arc::clone(&self.metrics);
        let _span = metrics.span("read.query_profiled");
        let t0 = Instant::now();
        if !contains_traingml(text) {
            if let Some(prepared) = self.cache.get(self.snapshot.generation(), text) {
                self.hits += 1;
                self.metrics.plan_cache_hits.inc();
                return self.run_profiled(t0, text, &prepared);
            }
        }
        match parse(text)? {
            SparqlMlOperation::PlainSelect(q) => {
                let prepared = self.cache.prepare_insert(&self.snapshot, text, q)?;
                self.misses += 1;
                self.metrics.plan_cache_misses.inc();
                self.run_profiled(t0, text, &prepared)
            }
            SparqlMlOperation::Select(q) => {
                let rows = {
                    let manager = witness::read(&self.manager);
                    match manager.query_select(&self.snapshot, q)? {
                        MlOutcome::Rows(rows) => rows,
                        other => {
                            return Err(MlError::Sparql(SparqlError::eval(format!(
                                "expected rows, got {other:?}"
                            ))))
                        }
                    }
                };
                let total = nanos_since(t0);
                self.metrics.query_latency.record(total);
                self.metrics.query_rows.record(rows.len() as u64);
                self.stats.queries += 1;
                self.stats.rows += rows.len() as u64;
                self.maybe_log_slow_ml(text, total, rows.len() as u64);
                let node = SpanNode::new("sparql-ml", total, rows.len() as u64);
                Ok((rows, node))
            }
            SparqlMlOperation::PlainUpdate(_)
            | SparqlMlOperation::Train(_)
            | SparqlMlOperation::DeleteModels(_) => Err(MlError::ReadOnly),
        }
    }

    fn run_profiled(
        &mut self,
        t0: Instant,
        text: &str,
        prepared: &PreparedQuery,
    ) -> Result<(QueryResult, SpanNode), MlError> {
        let (rows, stats, profile) = evaluate_prepared_profiled(&self.snapshot, prepared)?;
        let total = self.record_select(t0, &rows, &stats);
        let mut root = SpanNode::new("query", profile.total_nanos, rows.len() as u64);
        root.children =
            profile.ops.into_iter().map(|op| SpanNode::new(op.label, op.nanos, op.rows)).collect();
        self.maybe_log_slow(
            text,
            prepared,
            total,
            rows.len() as u64,
            stats.triples_scanned,
            Some(&root),
        );
        Ok((rows, root))
    }

    /// Execute a SELECT and return its rows (errors on non-row outcomes).
    pub fn sparql(&mut self, text: &str) -> Result<QueryResult, MlError> {
        match self.query(text)? {
            MlOutcome::Rows(rows) => Ok(rows),
            other => {
                Err(MlError::Sparql(SparqlError::eval(format!("expected rows, got {other:?}"))))
            }
        }
    }

    /// Query the KGMeta metadata graph (plain SPARQL over model metadata).
    /// KGMeta is *live* manager state, not part of the pinned data
    /// snapshot: models registered after this session opened are visible.
    pub fn sparql_kgmeta(&self, text: &str) -> Result<QueryResult, SparqlError> {
        let q = kgnet_rdf::sparql::parse_select(text)?;
        let manager = witness::read(&self.manager);
        kgnet_rdf::sparql::evaluate_select(manager.kgmeta().store(), &q)
    }

    /// Top-k entity-similarity search against a trained NodeSimilarity
    /// model, served without touching the data store at all: the manager
    /// read lock is held only long enough to clone the artifact's `Arc`
    /// out of the lock-free-to-readers model registry, then the search
    /// runs against that shared immutable ANN index — concurrent readers
    /// and writers never wait on it.
    pub fn similar_nodes(
        &self,
        model_uri: &str,
        node: &str,
        k: usize,
    ) -> Result<Vec<(String, f32)>, MlError> {
        let artifact = {
            let manager = witness::read(&self.manager);
            manager.trainer().model_store().get(model_uri)
        };
        let Some(artifact) = artifact else {
            return Err(MlError::Service(ServiceError::ModelNotFound(model_uri.to_owned())));
        };
        let ArtifactPayload::NodeSimilarity { store } = &artifact.payload else {
            return Err(MlError::Service(ServiceError::WrongTask(format!(
                "{model_uri} is not a similarity model"
            ))));
        };
        let Some(query) = store.get(node) else { return Ok(Vec::new()) };
        let q = query.to_vec();
        let _span = self.metrics.span("read.similar_nodes");
        let t0 = Instant::now();
        let (hits, stats) = store.search_with_stats(&q, k, &SearchParams::with_nprobe(4));
        self.metrics.ann_search_latency.record(nanos_since(t0));
        self.metrics.ann_candidates.add(stats.candidates);
        self.metrics.ann_distance_computations.add(stats.distance_computations);
        Ok(hits)
    }

    /// Re-pin onto the store's current version, making every commit since
    /// the last pin visible. Returns the new generation. Cached plans for
    /// the new version are picked up from the shared cache automatically.
    pub fn refresh(&mut self) -> u64 {
        self.snapshot = self.store.snapshot();
        self.snapshot.generation()
    }

    /// The pinned snapshot (direct scans, term resolution).
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Generation (MVCC version id) of the pinned snapshot.
    pub fn generation(&self) -> u64 {
        self.snapshot.generation()
    }

    /// This session's accumulated resource totals: queries run, rows
    /// returned, triples scanned, and time spent blocked on contended
    /// locks inside query calls.
    pub fn session_stats(&self) -> SessionStats {
        self.stats
    }

    /// This session's own plan-cache hit/miss counters (`entries` reports
    /// the shared cache's occupancy).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats { hits: self.hits, misses: self.misses, entries: self.cache.stats().entries }
    }

    /// The shared store handle (for re-pinning checks and new sessions).
    pub fn store(&self) -> &SharedStore {
        &self.store
    }
}

/// A write handle owning one open [`WriteTxn`]: data updates, synchronous
/// `TrainGML` and model deletion, batched into a private next version.
///
/// Nothing is visible to readers until [`commit`](Self::commit) publishes
/// the version atomically; [`abort`](Self::abort) — or simply dropping the
/// session — discards every pending data mutation. Opening a second write
/// session blocks until the first commits or aborts (writers are
/// serialised), but readers are never blocked either way.
pub struct WriteSession {
    txn: WriteTxn,
    manager: Arc<RwLock<QueryManager>>,
    metrics: Arc<ServerMetrics>,
}

impl WriteSession {
    pub(crate) fn new(
        store: SharedStore,
        manager: Arc<RwLock<QueryManager>>,
        metrics: Arc<ServerMetrics>,
    ) -> Self {
        // The one writer-gate acquisition in this crate: the lock-order
        // witness rejects it if this thread already holds a manager guard.
        witness::assert_manager_not_held("WriteSession::new");
        WriteSession { txn: store.begin(), manager, metrics }
    }

    /// Execute any SPARQL-ML operation against the pending version. Data
    /// mutations stay private until [`commit`](Self::commit); reads through
    /// this session see them immediately (read-your-writes). Note that a
    /// `TrainGML` here trains *synchronously while holding the manager
    /// write lock* and registers its model at once (model registry and
    /// KGMeta are not transactional); concurrent serving should submit
    /// training through the server's job queue instead.
    pub fn execute(&mut self, text: &str) -> Result<MlOutcome, MlError> {
        let _span = self.metrics.span("write.execute");
        let mut manager = witness::write(&self.manager);
        manager.update(self.txn.store_mut(), text)
    }

    /// Run a closure with exclusive access to the pending version (bulk
    /// loads, manual asserts). Mutations bump the pending generation and
    /// stay invisible to readers until [`commit`](Self::commit).
    pub fn with_store<R>(&mut self, f: impl FnOnce(&mut RdfStore) -> R) -> R {
        f(self.txn.store_mut())
    }

    /// Read access to the pending version (this session's own view).
    pub fn store(&self) -> &RdfStore {
        self.txn.store()
    }

    /// Generation of the published version this session branched from.
    pub fn base_generation(&self) -> u64 {
        self.txn.base_generation()
    }

    /// Atomically publish the pending version; every snapshot pinned from
    /// now on sees all of this session's mutations, snapshots pinned
    /// earlier see none. Returns the committed generation.
    pub fn commit(self) -> u64 {
        let _span = self.metrics.span("write.commit");
        let t0 = Instant::now();
        let generation = self.txn.commit();
        self.metrics.commit_latency.record(nanos_since(t0));
        self.metrics.store_generation.set(generation as i64);
        generation
    }

    /// Discard the pending version: readers never observe any of this
    /// session's data mutations. Equivalent to dropping the session;
    /// spelled out for call sites that want the intent visible.
    pub fn abort(self) {
        self.txn.abort();
    }
}
