//! kgnet-lint: the workspace's source-level invariant gate.
//!
//! Rust's compiler enforces memory safety; it cannot enforce *project*
//! discipline. This binary walks every `.rs` file in the workspace with a
//! small hand-rolled Rust lexer (same spirit as the SPARQL lexer in
//! `kgnet-rdf`: chars in, classified tokens out, no external crates) and
//! checks the concurrency/safety rules the kgnet codebase relies on:
//!
//! - **sync-imports** — blocking synchronisation primitives must come from
//!   the `kgnet-sync` facade. Direct `std::sync::{Mutex, RwLock, Condvar,
//!   Barrier}`, `std::sync::atomic` or `parking_lot` imports in non-test
//!   code (outside the facade crates and `vendor/`) would silently escape
//!   the deterministic model checker.
//! - **safety-comment** — every `unsafe` token is preceded by a
//!   `// SAFETY:` comment (or a `# Safety` doc section), vendor included.
//! - **lock-order** — in `kgnet-server`, the fixed order is *writer gate
//!   first, manager second*: opening a write transaction while a manager
//!   guard is live is flagged.
//! - **unwrap-on-sync** — `.unwrap()` directly on lock/channel/join results
//!   (`lock()`, zero-arg `read()`/`write()`, `recv()`, `join()`) in
//!   non-test code; the facade's non-poisoning locks make these
//!   unnecessary, and on channels an `unwrap` turns a peer's panic into a
//!   cascade.
//! - **forbid-unsafe** — every crate root carries
//!   `#![forbid(unsafe_code)]`, except the two crates that need raw
//!   pointers (`kgnet-ann`'s mmap views, `kgnet-check`'s instrumented
//!   cells) and `vendor/`.
//! - **net-boundary** — sockets live in exactly one crate. `std::net`,
//!   `TcpListener`, `TcpStream` and `UdpSocket` are banned outside
//!   `crates/http/` (and tests/vendor): everything below the frontend is
//!   in-process by design, and a stray socket would bypass the frontend's
//!   connection limits, access log and metrics.
//!
//! A deliberate exception is waived in place with `// lint:allow(<rule>)`
//! on the offending line or the line above. Run as
//! `cargo run -p kgnet-lint -- --deny` (CI does) to exit non-zero on any
//! finding.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

/// Classification of one lexed Rust token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokKind {
    /// Identifier or keyword (`unsafe`, `mod`, `let`, names, ...).
    Ident,
    /// Single punctuation character (`.`, `:`, `(`, `{`, `#`, ...).
    Punct,
    /// `// ...` comment (doc or plain), newline excluded.
    LineComment,
    /// `/* ... */` comment, nesting handled.
    BlockComment,
    /// String literal: `"..."`, raw `r"..."`/`r#"..."#`, byte variants.
    Str,
    /// Character literal `'x'` (including escapes).
    Char,
    /// Lifetime like `'a` (no closing quote).
    Lifetime,
    /// Numeric literal.
    Num,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
struct Tok {
    kind: TokKind,
    text: String,
    line: usize,
}

/// Lex Rust source into tokens. Never fails: unrecognised bytes become
/// single-char `Punct` tokens, and an unterminated literal swallows the
/// rest of the file (good enough for linting — rustc rejects such files
/// long before we see them).
fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let n = b.len();
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::LineComment, text: b[start..i].iter().collect(), line });
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let (start, start_line) = (i, line);
            let mut depth = 0usize;
            while i < n {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::BlockComment,
                text: b[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."# etc.
        if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
            let (start, start_line) = (i, line);
            while i < n && (b[i] == 'r' || b[i] == 'b') {
                i += 1;
            }
            let mut hashes = 0;
            while i < n && b[i] == '#' {
                hashes += 1;
                i += 1;
            }
            i += 1; // opening quote
            loop {
                if i >= n {
                    break;
                }
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                    continue;
                }
                if b[i] == '"' {
                    let mut k = 0;
                    while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        i += 1 + hashes;
                        break;
                    }
                }
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: b[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Plain (or byte) strings.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let (start, start_line) = (i, line);
            i += if c == 'b' { 2 } else { 1 };
            while i < n {
                if b[i] == '\\' {
                    i += 2;
                } else if b[i] == '"' {
                    i += 1;
                    break;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: b[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // 'a' / '\n' are char literals; 'a (no closing quote) is a
            // lifetime. Look for the closing quote within a short window.
            let is_char =
                if i + 2 < n && b[i + 1] == '\\' { true } else { i + 2 < n && b[i + 2] == '\'' };
            if is_char {
                let start = i;
                i += 1;
                while i < n {
                    if b[i] == '\\' {
                        i += 2;
                    } else if b[i] == '\'' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[start..i.min(n)].iter().collect(),
                    line,
                });
            } else {
                let start = i;
                i += 1;
                while i < n && (b[i] == '_' || b[i].is_alphanumeric()) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            continue;
        }
        // Identifiers / keywords.
        if c == '_' || c.is_alphabetic() {
            let start = i;
            while i < n && (b[i] == '_' || b[i].is_alphanumeric()) {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, text: b[start..i].iter().collect(), line });
            continue;
        }
        // Numbers (coarse: consume alphanumerics, dots handled as punct).
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (b[i] == '_' || b[i].is_alphanumeric()) {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Num, text: b[start..i].iter().collect(), line });
            continue;
        }
        // `::` matters to every path rule — lex it as one token.
        if c == ':' && i + 1 < n && b[i + 1] == ':' {
            toks.push(Tok { kind: TokKind::Punct, text: "::".to_owned(), line });
            i += 2;
            continue;
        }
        toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    toks
}

/// True when position `i` starts a raw-string literal (`r"`, `r#`, `br"`,
/// `br#`...), as opposed to an identifier beginning with `r`/`b`.
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != 'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

// ---------------------------------------------------------------------------
// Findings and rule context
// ---------------------------------------------------------------------------

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Finding {
    path: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path.display(), self.line, self.rule, self.message)
    }
}

/// A source file prepared for linting: tokens, raw lines, and the line
/// ranges covered by `#[cfg(test)]` modules.
struct SourceFile {
    path: PathBuf,
    lines: Vec<String>,
    toks: Vec<Tok>,
    /// Inclusive line ranges inside `#[cfg(test)] mod ... { }` bodies.
    test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    fn parse(path: PathBuf, src: &str) -> SourceFile {
        let toks = lex(src);
        let test_ranges = find_cfg_test_ranges(&toks);
        let lines = src.lines().map(str::to_owned).collect();
        SourceFile { path, lines, toks, test_ranges }
    }

    /// Code tokens only (comments stripped) — what the path rules scan.
    fn code(&self) -> Vec<&Tok> {
        self.toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect()
    }

    fn in_test_code(&self, line: usize) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// `// lint:allow(rule)` on the finding's line or the one above waives
    /// it.
    fn waived(&self, line: usize, rule: &str) -> bool {
        let marker = format!("lint:allow({rule})");
        [line, line.saturating_sub(1)]
            .iter()
            .filter(|&&l| l >= 1)
            .any(|&l| self.lines.get(l - 1).is_some_and(|s| s.contains(&marker)))
    }
}

/// Line ranges of `#[cfg(test)] mod ... { ... }` bodies, so test-only code
/// can be exempted from the production-code rules.
fn find_cfg_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        // Match `# [ cfg ( test ) ]` (also `cfg(all(test, ...))` etc. — any
        // attribute that mentions `test` inside `cfg(...)`).
        if code[i].text == "#"
            && i + 2 < code.len()
            && code[i + 1].text == "["
            && code[i + 2].text == "cfg"
        {
            let mut j = i + 3;
            let mut depth = 0usize;
            let mut mentions_test = false;
            while j < code.len() {
                match code[j].text.as_str() {
                    "[" | "(" => depth += 1,
                    "]" | ")" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                        if depth == 0 && code[j].text == ")" {
                            j += 1;
                            break;
                        }
                    }
                    "test" => mentions_test = true,
                    _ => {}
                }
                j += 1;
            }
            // Skip the closing `]` of the attribute.
            while j < code.len() && code[j].text == "]" {
                j += 1;
            }
            if mentions_test && j < code.len() && code[j].text == "mod" {
                // Find the module's opening brace, then its close.
                let mut k = j;
                while k < code.len() && code[k].text != "{" && code[k].text != ";" {
                    k += 1;
                }
                if k < code.len() && code[k].text == "{" {
                    let start_line = code[i].line;
                    let mut depth = 0usize;
                    let mut end_line = code[k].line;
                    while k < code.len() {
                        match code[k].text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    end_line = code[k].line;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    ranges.push((start_line, end_line));
                    i = k;
                }
            }
        }
        i += 1;
    }
    ranges
}

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

fn path_has_component(path: &Path, name: &str) -> bool {
    path.components().any(|c| c.as_os_str() == name)
}

/// Integration tests, benches and bin fixtures: exempt from the
/// production-code rules.
fn is_test_path(path: &Path) -> bool {
    path_has_component(path, "tests") || path_has_component(path, "benches")
}

fn is_vendor(path: &Path) -> bool {
    path_has_component(path, "vendor")
}

/// The sync facade and the model checker implement the primitives — they
/// are the one place allowed to name the real ones.
fn is_facade_crate(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.contains("crates/sync/") || p.contains("crates/check/")
}

// ---------------------------------------------------------------------------
// Rule: sync-imports
// ---------------------------------------------------------------------------

/// `std::sync` members that denote blocking/racing primitives. Everything
/// else (`Arc`, `Weak`, `mpsc`, `OnceLock`, `LazyLock`, `PoisonError`...)
/// is fine to use directly.
const DENIED_STD_SYNC: &[&str] =
    &["Mutex", "RwLock", "Condvar", "Barrier", "atomic", "Once", "OnceState"];

fn rule_sync_imports(file: &SourceFile, out: &mut Vec<Finding>) {
    if is_vendor(&file.path) || is_facade_crate(&file.path) || is_test_path(&file.path) {
        return;
    }
    let code = file.code();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || file.in_test_code(t.line) {
            continue;
        }
        if t.text == "parking_lot" {
            out.push(Finding {
                path: file.path.clone(),
                line: t.line,
                rule: "sync-imports",
                message: "direct `parking_lot` use: import the lock from `kgnet_sync` instead"
                    .to_owned(),
            });
            continue;
        }
        // `std :: sync :: <Denied>`
        if t.text == "std"
            && matches(&code, i + 1, &["::", "sync", "::"])
            && code.get(i + 4).is_some_and(|x| DENIED_STD_SYNC.contains(&x.text.as_str()))
        {
            let denied = &code[i + 4].text;
            out.push(Finding {
                path: file.path.clone(),
                line: t.line,
                rule: "sync-imports",
                message: format!(
                    "direct `std::sync::{denied}` use: import it from `kgnet_sync` so the \
                     model checker can schedule it"
                ),
            });
        }
    }
}

fn matches(code: &[&Tok], from: usize, texts: &[&str]) -> bool {
    texts.iter().enumerate().all(|(k, want)| code.get(from + k).is_some_and(|t| t.text == *want))
}

/// Index of the `)` closing the `(` at `open`, if balanced.
fn matching_paren(code: &[&Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in code.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Rule: safety-comment
// ---------------------------------------------------------------------------

fn rule_safety_comment(file: &SourceFile, out: &mut Vec<Finding>) {
    let code = file.code();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        // `unsafe fn` declarations may document their contract with a
        // `# Safety` doc section instead of a SAFETY comment.
        let is_unsafe_fn =
            code.get(i + 1).is_some_and(|x| x.text == "fn") || matches(&code, i + 1, &["extern"]);
        if has_safety_comment(file, t.line) || (is_unsafe_fn && has_safety_doc(file, t.line)) {
            continue;
        }
        out.push(Finding {
            path: file.path.clone(),
            line: t.line,
            rule: "safety-comment",
            message: "`unsafe` without a preceding `// SAFETY:` comment explaining why the \
                      invariants hold"
                .to_owned(),
        });
    }
}

/// A `SAFETY:` comment on the same line or within the six lines above,
/// skipping attributes, blank lines and sibling `unsafe impl` lines (one
/// comment may justify a Send/Sync pair).
fn has_safety_comment(file: &SourceFile, line: usize) -> bool {
    let this = file.lines.get(line - 1).map(String::as_str).unwrap_or("");
    if line_has_safety_marker(this) {
        return true;
    }
    let mut budget = 6;
    let mut l = line - 1;
    while budget > 0 && l >= 1 {
        let text = file.lines.get(l - 1).map(String::as_str).unwrap_or("");
        let trimmed = text.trim();
        if line_has_safety_marker(text) {
            return true;
        }
        let skippable = trimmed.is_empty()
            || trimmed.starts_with("#[")
            || trimmed.starts_with("#!")
            || trimmed.starts_with("unsafe impl")
            || trimmed.ends_with('{')
            // rustfmt wraps long statements: `let x =` / `f(` on the line
            // above means the unsafe token sits on a continuation line and
            // the comment governs the whole statement.
            || trimmed.ends_with('=')
            || trimmed.ends_with('(');
        if !skippable && !trimmed.starts_with("//") {
            return false;
        }
        budget -= 1;
        l -= 1;
    }
    false
}

fn line_has_safety_marker(line: &str) -> bool {
    line.contains("// SAFETY:") || line.contains("//! SAFETY:") || line.contains("/// SAFETY:")
}

/// A `# Safety` doc heading in the doc comment block directly above.
fn has_safety_doc(file: &SourceFile, line: usize) -> bool {
    let mut l = line - 1;
    while l >= 1 {
        let text = file.lines.get(l - 1).map(String::as_str).unwrap_or("");
        let trimmed = text.trim();
        if trimmed.starts_with("///") || trimmed.starts_with("//!") {
            if trimmed.contains("# Safety") {
                return true;
            }
        } else if !(trimmed.is_empty() || trimmed.starts_with("#[") || trimmed.starts_with("//")) {
            return false;
        }
        l -= 1;
    }
    false
}

// ---------------------------------------------------------------------------
// Rule: lock-order (kgnet-server only)
// ---------------------------------------------------------------------------

fn rule_lock_order(file: &SourceFile, out: &mut Vec<Finding>) {
    let p = file.path.to_string_lossy().replace('\\', "/");
    if !p.contains("crates/server/src/") || is_test_path(&file.path) {
        return;
    }
    let code = file.code();
    // Live manager guards: (brace depth at acquisition, bound?).
    // A `let`-bound guard lives until its block closes; a temporary dies at
    // the end of the statement (`;`).
    let mut depth = 0usize;
    let mut guards: Vec<(usize, bool)> = Vec::new();
    // Was there a `let` since the last statement boundary?
    let mut let_in_stmt = false;
    for (i, t) in code.iter().enumerate() {
        if file.in_test_code(t.line) {
            continue;
        }
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                guards.retain(|&(d, _)| d <= depth);
            }
            ";" => {
                guards.retain(|&(_, bound)| bound);
                let_in_stmt = false;
            }
            "let" => let_in_stmt = true,
            _ => {}
        }
        // Manager guard acquisition: `witness :: read|write (`.
        if t.text == "witness"
            && matches(&code, i + 1, &["::"])
            && code.get(i + 2).is_some_and(|x| x.text == "read" || x.text == "write")
            && code.get(i + 3).is_some_and(|x| x.text == "(")
        {
            // `witness::read(..).method()` consumes the guard as a
            // temporary — it dies at the end of the statement even when the
            // statement is a `let`. Only a directly-bound guard outlives it.
            let chained = matching_paren(&code, i + 3)
                .and_then(|close| code.get(close + 1))
                .is_some_and(|x| x.text == ".");
            guards.push((depth, let_in_stmt && !chained));
        }
        // Writer-gate acquisition while a guard is live.
        let takes_gate = (t.text == "begin" || t.text == "write_session")
            && code.get(i + 1).is_some_and(|x| x.text == "(")
            && i > 0
            && code[i - 1].text == ".";
        if takes_gate && !guards.is_empty() {
            out.push(Finding {
                path: file.path.clone(),
                line: t.line,
                rule: "lock-order",
                message: format!(
                    "`{}()` acquires the writer gate while a manager guard is live — the fixed \
                     order is writer gate first, manager second",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: unwrap-on-sync
// ---------------------------------------------------------------------------

/// Methods whose results must not be `.unwrap()`ed in production code:
/// lock acquisitions (facade locks don't poison — the `Result` shouldn't
/// exist) and channel/thread endpoints (a peer's panic shouldn't cascade).
const SYNC_METHODS: &[&str] = &["lock", "read", "write", "recv", "join"];

fn rule_unwrap_on_sync(file: &SourceFile, out: &mut Vec<Finding>) {
    if is_test_path(&file.path) {
        return;
    }
    let code = file.code();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !SYNC_METHODS.contains(&t.text.as_str())
            || file.in_test_code(t.line)
        {
            continue;
        }
        // `. method ( )` — zero-arg call only, so `io::Read::read(&mut buf)`
        // and friends don't false-positive.
        if i == 0
            || code[i - 1].text != "."
            || !matches(&code, i + 1, &["(", ")", ".", "unwrap", "("])
        {
            continue;
        }
        out.push(Finding {
            path: file.path.clone(),
            line: t.line,
            rule: "unwrap-on-sync",
            message: format!(
                "`.{}().unwrap()` in non-test code: handle the failure (facade locks don't \
                 poison; channel/join errors deserve a real path)",
                t.text
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule: forbid-unsafe
// ---------------------------------------------------------------------------

/// Crates that legitimately contain `unsafe` (each site still needs its
/// SAFETY comment): the mmap/ANN layer and the model checker's primitives.
const UNSAFE_CRATES: &[&str] = &["crates/ann/", "crates/check/"];

fn rule_forbid_unsafe(file: &SourceFile, out: &mut Vec<Finding>) {
    let p = file.path.to_string_lossy().replace('\\', "/");
    let is_crate_root = p.ends_with("src/lib.rs") || p.ends_with("src/main.rs");
    if !is_crate_root || is_vendor(&file.path) {
        return;
    }
    if UNSAFE_CRATES.iter().any(|c| p.contains(c)) {
        return;
    }
    let code = file.code();
    let has = (0..code.len()).any(|i| {
        matches(&code, i, &["#", "!", "["])
            && code.get(i + 3).is_some_and(|t| t.text == "forbid")
            && matches(&code, i + 4, &["(", "unsafe_code", ")"])
    });
    if !has {
        out.push(Finding {
            path: file.path.clone(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate root lacks `#![forbid(unsafe_code)]` (only kgnet-ann and \
                      kgnet-check may contain unsafe code)"
                .to_owned(),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule: net-boundary
// ---------------------------------------------------------------------------

/// Socket types that may only be named inside the frontend crate. The
/// bare idents are checked (not just `std :: net` paths) so a
/// `use std::net::TcpStream;` at the top of a file doesn't launder the
/// type into scope for the rest of it.
const NET_TYPES: &[&str] = &["TcpListener", "TcpStream", "UdpSocket"];

/// The one crate allowed to open sockets.
fn is_net_crate(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.contains("crates/http/")
}

fn rule_net_boundary(file: &SourceFile, out: &mut Vec<Finding>) {
    if is_vendor(&file.path) || is_net_crate(&file.path) || is_test_path(&file.path) {
        return;
    }
    let code = file.code();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || file.in_test_code(t.line) {
            continue;
        }
        let offender = if NET_TYPES.contains(&t.text.as_str()) {
            format!("`{}`", t.text)
        } else if t.text == "std" && matches(&code, i + 1, &["::", "net"]) {
            "`std::net`".to_owned()
        } else {
            continue;
        };
        out.push(Finding {
            path: file.path.clone(),
            line: t.line,
            rule: "net-boundary",
            message: format!(
                "{offender} outside `crates/http`: sockets live behind the frontend so its \
                 connection limits, access log and metrics see every byte on the wire"
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule: obs-hot-path (kgnet-obs metric instruments only)
// ---------------------------------------------------------------------------

/// Lock tokens banned from the metric instruments. Counter/gauge bumps and
/// histogram recording sit on the query and commit hot paths: they must
/// stay lock-free (relaxed/release atomics). The registry and tracer may
/// lock — registration and span draining are cold — so only the
/// instruments file is policed.
const OBS_LOCK_TOKENS: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier"];

/// Additionally banned from the lock-site profiler: the uncontended-acquire
/// fast path runs inside every facade lock acquisition in the system, so
/// beyond locks it must not allocate either — a counter bump is all it may
/// cost.
const PROFILE_ALLOC_TOKENS: &[&str] =
    &["Vec", "Box", "String", "HashMap", "format", "vec", "to_owned", "to_string"];

fn rule_obs_hot_path(file: &SourceFile, out: &mut Vec<Finding>) {
    let p = file.path.to_string_lossy().replace('\\', "/");
    let is_instruments =
        p.ends_with("crates/obs/src/metrics.rs") || p.ends_with("obs/src/metrics.rs");
    let is_profiler =
        p.ends_with("crates/sync/src/profile.rs") || p.ends_with("sync/src/profile.rs");
    if !is_instruments && !is_profiler {
        return;
    }
    let code = file.code();
    for t in code.iter() {
        if t.kind != TokKind::Ident || file.in_test_code(t.line) {
            continue;
        }
        if OBS_LOCK_TOKENS.contains(&t.text.as_str()) {
            out.push(Finding {
                path: file.path.clone(),
                line: t.line,
                rule: "obs-hot-path",
                message: format!(
                    "`{}` in the metric instruments: hot-path recording must stay lock-free \
                     atomics — locks belong in the registry/tracer, not Counter/Gauge/Histogram",
                    t.text
                ),
            });
        } else if is_profiler && PROFILE_ALLOC_TOKENS.contains(&t.text.as_str()) {
            out.push(Finding {
                path: file.path.clone(),
                line: t.line,
                rule: "obs-hot-path",
                message: format!(
                    "`{}` in the lock-site profiler: the uncontended acquire path runs inside \
                     every facade lock acquisition and must stay allocation-free — move \
                     rendering and aggregation into kgnet_sync::sites",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

fn lint_source(path: PathBuf, src: &str) -> Vec<Finding> {
    let file = SourceFile::parse(path, src);
    let mut raw = Vec::new();
    rule_sync_imports(&file, &mut raw);
    rule_safety_comment(&file, &mut raw);
    rule_lock_order(&file, &mut raw);
    rule_unwrap_on_sync(&file, &mut raw);
    rule_forbid_unsafe(&file, &mut raw);
    rule_net_boundary(&file, &mut raw);
    rule_obs_hot_path(&file, &mut raw);
    raw.retain(|f| !file.waived(f.line, f.rule));
    raw
}

fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') || name.starts_with("target-") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => {
                root = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--root needs a directory argument");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other} (expected --deny and/or --root <dir>)");
                return ExitCode::from(2);
            }
        }
    }

    let mut files = Vec::new();
    collect_rs_files(&root, &mut files);
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in files {
        let Ok(src) = std::fs::read_to_string(&path) else { continue };
        scanned += 1;
        findings.extend(lint_source(path, &src));
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));

    for f in &findings {
        println!("{f}");
    }
    println!(
        "kgnet-lint: {} file(s) scanned, {} finding(s){}",
        scanned,
        findings.len(),
        if deny { " [--deny]" } else { "" }
    );
    if deny && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(path: &str, src: &str) -> Vec<Finding> {
        lint_source(PathBuf::from(path), src)
    }

    fn rules(found: &[Finding]) -> Vec<&'static str> {
        found.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn lexer_classifies_comments_strings_and_idents() {
        let toks = lex("let s = \"std::sync::Mutex\"; // std::sync::Mutex\n/* parking_lot */ x");
        let kinds: Vec<TokKind> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Ident, // let
                TokKind::Ident, // s
                TokKind::Punct, // =
                TokKind::Str,
                TokKind::Punct, // ;
                TokKind::LineComment,
                TokKind::BlockComment,
                TokKind::Ident, // x
            ]
        );
        assert_eq!(toks[7].line, 2);
    }

    #[test]
    fn lexer_handles_raw_strings_and_lifetimes() {
        let toks = lex("fn f<'a>(x: &'a str) { r#\"unsafe \"quoted\" \"# }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        let raw: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(raw.len(), 1);
        assert!(raw[0].text.contains("unsafe"));
        // The `unsafe` inside the raw string is not an ident token.
        assert!(!toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "unsafe"));
    }

    #[test]
    fn sync_imports_flags_std_and_parking_lot_in_prod_code() {
        let found = findings_for(
            "crates/rdf/src/x.rs",
            "use std::sync::Mutex;\nuse parking_lot::RwLock;\nuse std::sync::Arc;\n",
        );
        assert_eq!(rules(&found), vec!["sync-imports", "sync-imports"]);
        assert!(found[0].message.contains("Mutex"));
    }

    #[test]
    fn sync_imports_allows_facade_vendor_tests_and_cfg_test() {
        let src = "use std::sync::Mutex;\n";
        assert!(findings_for("crates/sync/src/facade.rs", src).is_empty());
        assert!(findings_for("crates/check/src/sync.rs", src).is_empty());
        assert!(findings_for("vendor/memmap2/src/lib.rs", src).is_empty());
        assert!(findings_for("crates/rdf/tests/x.rs", src).is_empty());
        let gated = "#[cfg(test)]\nmod tests {\n    use std::sync::Barrier;\n}\n";
        assert!(findings_for("crates/rdf/src/x.rs", gated).is_empty());
        // Arc, mpsc, OnceLock stay allowed anywhere.
        let fine = "use std::sync::{Arc, OnceLock};\nuse std::sync::mpsc;\n";
        assert!(findings_for("crates/rdf/src/x.rs", fine).is_empty());
    }

    #[test]
    fn safety_comment_required_even_in_vendor() {
        let bad = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(rules(&findings_for("vendor/memmap2/src/lib.rs", bad)), vec!["safety-comment"]);
        let good = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert!(findings_for("vendor/memmap2/src/lib.rs", good).is_empty());
    }

    #[test]
    fn safety_comment_accepts_shared_comment_for_impl_pairs_and_safety_doc() {
        let pair = "// SAFETY: T is Send, the raw pointer is owned.\nunsafe impl<T: Send> Send for X<T> {}\nunsafe impl<T: Send> Sync for X<T> {}\n";
        assert!(findings_for("crates/ann/src/x.rs", pair).is_empty());
        let doc = "/// Reads a byte.\n///\n/// # Safety\n/// `p` must be valid.\npub unsafe fn f(p: *const u8) -> u8 { *p }\n";
        assert!(findings_for("crates/ann/src/x.rs", doc).is_empty());
    }

    #[test]
    fn lock_order_flags_gate_under_let_bound_manager_guard() {
        let bad = "fn f(&self) {\n    let m = witness::read(&self.manager);\n    let txn = self.store.begin();\n}\n";
        assert_eq!(rules(&findings_for("crates/server/src/x.rs", bad)), vec!["lock-order"]);
        // Scoped guard released before the gate: fine.
        let good = "fn f(&self) {\n    let v = {\n        let m = witness::read(&self.manager);\n        m.len()\n    };\n    let txn = self.store.begin();\n}\n";
        assert!(findings_for("crates/server/src/x.rs", good).is_empty());
        // Temporary guard dies at the statement end.
        let temp = "fn f(&self) {\n    let n = witness::read(&self.manager).len();\n    let txn = self.store.begin();\n}\n";
        assert!(findings_for("crates/server/src/x.rs", temp).is_empty());
        // Outside kgnet-server the rule does not apply.
        assert!(findings_for("crates/rdf/src/x.rs", bad).is_empty());
    }

    #[test]
    fn unwrap_on_sync_flags_zero_arg_lock_unwraps_only() {
        let bad = "fn f(&self) {\n    let g = self.m.lock().unwrap();\n    let x = self.rx.recv().unwrap();\n}\n";
        let found = findings_for("crates/rdf/src/x.rs", bad);
        assert_eq!(rules(&found), vec!["unwrap-on-sync", "unwrap-on-sync"]);
        // io-style read with arguments is not a lock acquisition.
        let io =
            "fn f(r: &mut impl std::io::Read, buf: &mut [u8]) {\n    r.read(buf).unwrap();\n}\n";
        assert!(findings_for("crates/rdf/src/x.rs", io).is_empty());
        // Facade-style lock without unwrap is the fixed form.
        let good = "fn f(&self) {\n    let g = self.m.lock();\n}\n";
        assert!(findings_for("crates/rdf/src/x.rs", good).is_empty());
        // Tests may unwrap.
        assert!(findings_for("crates/rdf/tests/x.rs", bad).is_empty());
    }

    #[test]
    fn forbid_unsafe_required_in_crate_roots_with_exemptions() {
        let bare = "pub fn f() {}\n";
        assert_eq!(rules(&findings_for("crates/rdf/src/lib.rs", bare)), vec!["forbid-unsafe"]);
        let good = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(findings_for("crates/rdf/src/lib.rs", good).is_empty());
        // ann/check/vendor are exempt; non-root files are too.
        assert!(findings_for("crates/ann/src/lib.rs", bare).is_empty());
        assert!(findings_for("crates/check/src/lib.rs", bare).is_empty());
        assert!(findings_for("vendor/rayon/src/lib.rs", bare).is_empty());
        assert!(findings_for("crates/rdf/src/store.rs", bare).is_empty());
    }

    #[test]
    fn waiver_comment_suppresses_a_finding() {
        let waived = "// lint:allow(sync-imports)\nuse std::sync::Mutex;\n";
        assert!(findings_for("crates/rdf/src/x.rs", waived).is_empty());
        let inline = "use std::sync::Mutex; // lint:allow(sync-imports)\n";
        assert!(findings_for("crates/rdf/src/x.rs", inline).is_empty());
        // The waiver names the rule: a different rule's marker doesn't help.
        let wrong = "// lint:allow(safety-comment)\nuse std::sync::Mutex;\n";
        assert_eq!(rules(&findings_for("crates/rdf/src/x.rs", wrong)), vec!["sync-imports"]);
    }

    #[test]
    fn strings_and_comments_never_trigger_path_rules() {
        let src =
            "// std::sync::Mutex parking_lot\nconst S: &str = \"use std::sync::Mutex; unsafe\";\n";
        assert!(findings_for("crates/rdf/src/x.rs", src).is_empty());
    }

    #[test]
    fn net_boundary_bans_sockets_outside_the_frontend_crate() {
        // The `use` draws two findings (path + ident) and the call site a
        // third: the laundered type stays flagged at every mention.
        let listener = "use std::net::TcpListener;\nfn f() { let l = TcpListener::bind(\"0\"); }\n";
        let found = findings_for("crates/server/src/x.rs", listener);
        assert_eq!(rules(&found), vec!["net-boundary"; 3]);
        assert!(found[0].message.contains("crates/http"));
        // A bare ident is flagged even without the `std::net` path in sight.
        let bare = "fn f(s: TcpStream) {}\n";
        assert_eq!(rules(&findings_for("crates/rdf/src/x.rs", bare)), vec!["net-boundary"]);
        let udp = "fn f() { let _ = std::net::UdpSocket::bind(\"0\"); }\n";
        assert_eq!(
            rules(&findings_for("crates/gml/src/x.rs", udp)),
            vec!["net-boundary", "net-boundary"]
        );
        // The frontend crate, vendor, integration tests and #[cfg(test)]
        // modules are all allowed to touch sockets.
        let src = "use std::net::{TcpListener, TcpStream};\n";
        assert!(findings_for("crates/http/src/client.rs", src).is_empty());
        assert!(findings_for("vendor/memmap2/src/lib.rs", src).is_empty());
        assert!(findings_for("crates/server/tests/x.rs", src).is_empty());
        let gated = "#[cfg(test)]\nmod tests {\n    use std::net::TcpStream;\n}\n";
        assert!(findings_for("crates/server/src/x.rs", gated).is_empty());
        // `std::net::SocketAddr` outside the frontend is still flagged —
        // the address type rides along with the path ban; plain
        // non-socket idents obviously don't.
        let fine = "fn f() { let x = std::io::Error::last_os_error(); }\n";
        assert!(findings_for("crates/server/src/x.rs", fine).is_empty());
        // Strings and comments never trigger it.
        let quoted = "// TcpStream\nconst S: &str = \"std::net::TcpListener\";\n";
        assert!(findings_for("crates/server/src/x.rs", quoted).is_empty());
    }

    #[test]
    fn obs_hot_path_bans_locks_in_the_metric_instruments() {
        let locked = "use kgnet_sync::Mutex;\npub struct Histogram { m: Mutex<u64> }\n";
        let found = findings_for("crates/obs/src/metrics.rs", locked);
        assert_eq!(rules(&found), vec!["obs-hot-path", "obs-hot-path"]);
        assert!(found[0].message.contains("lock-free"));
        // Atomics are the sanctioned form.
        let atomic = "use kgnet_sync::atomic::AtomicU64;\n\
                      pub struct Counter { v: AtomicU64 }\n";
        assert!(findings_for("crates/obs/src/metrics.rs", atomic).is_empty());
        // Comments, test code and the rest of the obs crate are out of
        // scope: registry and tracer may lock.
        let elsewhere = "use kgnet_sync::Mutex;\n";
        assert!(findings_for("crates/obs/src/registry.rs", elsewhere).is_empty());
        assert!(findings_for("crates/obs/src/trace.rs", elsewhere).is_empty());
        let in_tests = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use kgnet_sync::Mutex;\n}\n";
        assert!(findings_for("crates/obs/src/metrics.rs", in_tests).is_empty());
        let comment = "// Mutex would be wrong here\npub fn f() {}\n";
        assert!(findings_for("crates/obs/src/metrics.rs", comment).is_empty());
    }

    #[test]
    fn obs_hot_path_bans_locks_and_allocation_in_the_lock_profiler() {
        // The profiler file is held to the instruments' lock ban...
        let locked = "use kgnet_sync::Mutex;\npub struct SyncSite { m: Mutex<u64> }\n";
        assert_eq!(
            rules(&findings_for("crates/sync/src/profile.rs", locked)),
            vec!["obs-hot-path", "obs-hot-path"]
        );
        // ...plus an allocation ban: the uncontended path may only bump
        // atomics.
        let alloc = "pub fn snapshot() -> Vec<u64> { vec![] }\n";
        let found = findings_for("crates/sync/src/profile.rs", alloc);
        assert_eq!(rules(&found), vec!["obs-hot-path", "obs-hot-path"]);
        assert!(found[0].message.contains("allocation-free"));
        let string = "pub fn name() -> String { \"x\".to_string() }\n";
        assert_eq!(
            rules(&findings_for("crates/sync/src/profile.rs", string)),
            vec!["obs-hot-path", "obs-hot-path"]
        );
        // Static counters in the sanctioned form pass.
        let atomic = "use std::sync::atomic::AtomicU64;\n\
                      pub struct SyncSite { acquires: AtomicU64 }\n";
        assert!(findings_for("crates/sync/src/profile.rs", atomic).is_empty());
        // The allocation ban is scoped to the profiler: the aggregation
        // module may build Vecs and the instruments file may format.
        let sites = "pub fn all() -> Vec<u64> { Vec::new() }\n";
        assert!(findings_for("crates/sync/src/sites.rs", sites).is_empty());
        let obs_alloc = "pub fn render() -> String { String::new() }\n";
        assert!(findings_for("crates/obs/src/metrics.rs", obs_alloc).is_empty());
        // Test code inside the profiler is out of scope.
        let in_tests =
            "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() -> Vec<u64> { vec![] }\n}\n";
        assert!(findings_for("crates/sync/src/profile.rs", in_tests).is_empty());
    }
}
