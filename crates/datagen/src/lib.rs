//! # kgnet-datagen
//!
//! Synthetic knowledge-graph generators that substitute for the two real KGs
//! of the paper's evaluation (DBLP, 252M triples; YAGO-4, 400M triples) at
//! laptop scale, while preserving the schema shape of Table I and the causal
//! structure the experiments depend on (label signal inside the
//! task-relevant 1-hop neighbourhood, task-irrelevant distractor structure
//! elsewhere). See DESIGN.md §2 for the substitution argument.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dblp;
pub mod vocab;
pub mod yago;

pub use dblp::{generate as generate_dblp, DblpConfig, DblpGroundTruth};
pub use yago::{generate as generate_yago, YagoConfig, YagoGroundTruth};
