//! Synthetic DBLP-shaped knowledge graph generator.
//!
//! The paper evaluates on the 252M-triple RDF dump of DBLP, which is not
//! available here; this generator produces a schema-faithful, scaled-down
//! graph with the same *mechanisms* the paper's experiments rely on:
//!
//! * a latent topic governs which venue publishes a paper, which authors
//!   write it and which papers it cites — so venue classification is
//!   learnable from the task-relevant 1-hop structure (`authoredBy`,
//!   `cites`);
//! * co-authors tend to share an affiliation, and co-authorship is only
//!   observable through publication nodes — so affiliation link prediction
//!   is learnable from the bidirectional 1-hop structure (d2h1) but not
//!   from outgoing edges alone;
//! * a configurable cloud of distractor node/edge types (Table I: 42 node
//!   types, 48 edge types) attaches topic-uncorrelated structure mostly
//!   *around* the targets (incoming edges, 2+ hops), which the d1h1/d2h1
//!   meta-sampler prunes away — reproducing the accuracy/time/memory win of
//!   KGNet's task-specific subgraph.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use kgnet_rdf::term::RDF_TYPE;
use kgnet_rdf::{RdfStore, Term};

use crate::vocab::dblp as v;

/// Configuration for the DBLP generator.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
    /// Number of publications (the NC targets).
    pub n_papers: usize,
    /// Number of authors.
    pub n_authors: usize,
    /// Number of venues (the NC classes; 50 in Table I).
    pub n_venues: usize,
    /// Number of affiliations (the LP destinations).
    pub n_affiliations: usize,
    /// Number of latent topics driving the label signal.
    pub n_topics: usize,
    /// Probability that a paper's venue matches its topic (label signal
    /// strength).
    pub venue_signal: f64,
    /// Probability that a co-author shares the first author's affiliation.
    pub affiliation_cohesion: f64,
    /// Mean citations per paper.
    pub citations_per_paper: f64,
    /// Maximum authors per paper.
    pub max_authors_per_paper: usize,
    /// Number of distractor node classes (beyond the 5 core classes).
    pub distractor_classes: usize,
    /// Number of distractor edge types (beyond the ~10 core predicates).
    pub distractor_edge_types: usize,
    /// Distractor entities per distractor class.
    pub distractor_entities_per_class: usize,
    /// Mean distractor edges attached per paper (mostly incoming).
    pub distractor_edges_per_paper: f64,
    /// Number of keywords.
    pub n_keywords: usize,
}

impl DblpConfig {
    /// Tiny graph for unit tests (hundreds of triples).
    pub fn tiny(seed: u64) -> Self {
        DblpConfig {
            seed,
            n_papers: 60,
            n_authors: 30,
            n_venues: 5,
            n_affiliations: 6,
            n_topics: 5,
            venue_signal: 0.9,
            affiliation_cohesion: 0.8,
            citations_per_paper: 2.0,
            max_authors_per_paper: 3,
            distractor_classes: 6,
            distractor_edge_types: 8,
            distractor_entities_per_class: 10,
            distractor_edges_per_paper: 2.0,
            n_keywords: 10,
        }
    }

    /// Small graph for integration tests (tens of thousands of triples).
    pub fn small(seed: u64) -> Self {
        DblpConfig {
            seed,
            n_papers: 800,
            n_authors: 400,
            n_venues: 10,
            n_affiliations: 20,
            n_topics: 10,
            venue_signal: 0.9,
            affiliation_cohesion: 0.75,
            citations_per_paper: 3.0,
            max_authors_per_paper: 3,
            distractor_classes: 12,
            distractor_edge_types: 16,
            distractor_entities_per_class: 40,
            distractor_edges_per_paper: 3.0,
            n_keywords: 40,
        }
    }

    /// Benchmark-scale graph matching Table I's *shape*: 42 node types,
    /// 48 edge types, 50 venues. A few hundred thousand triples.
    pub fn benchmark(seed: u64) -> Self {
        DblpConfig {
            seed,
            n_papers: 6_000,
            n_authors: 2_500,
            n_venues: 50,
            n_affiliations: 120,
            n_topics: 50,
            venue_signal: 0.92,
            affiliation_cohesion: 0.75,
            citations_per_paper: 4.0,
            max_authors_per_paper: 4,
            // 5 core classes + 37 distractors = 42 node types (Table I).
            distractor_classes: 37,
            // ~10 core predicates + 38 distractors = 48 edge types.
            distractor_edge_types: 38,
            distractor_entities_per_class: 400,
            distractor_edges_per_paper: 20.0,
            n_keywords: 200,
        }
    }

    /// Scale every entity count by `f` (triple count scales roughly
    /// linearly). Used by the scalability sweeps.
    pub fn scaled(mut self, f: f64) -> Self {
        let scale = |n: usize| ((n as f64 * f).round() as usize).max(1);
        self.n_papers = scale(self.n_papers);
        self.n_authors = scale(self.n_authors);
        self.n_affiliations = scale(self.n_affiliations);
        self.distractor_entities_per_class = scale(self.distractor_entities_per_class);
        self.n_keywords = scale(self.n_keywords);
        self
    }
}

/// Ground-truth bookkeeping emitted alongside the graph (used by tests and
/// by experiment harnesses to compute upper bounds; models never see it).
#[derive(Debug, Clone, Default)]
pub struct DblpGroundTruth {
    /// Latent topic of each paper.
    pub paper_topic: Vec<usize>,
    /// Latent topic of each author.
    pub author_topic: Vec<usize>,
    /// Affiliation index of each author.
    pub author_affiliation: Vec<usize>,
    /// Venue index of each paper (the NC label).
    pub paper_venue: Vec<usize>,
}

/// Generate the synthetic DBLP KG.
pub fn generate(cfg: &DblpConfig) -> (RdfStore, DblpGroundTruth) {
    assert!(cfg.n_topics > 0 && cfg.n_venues > 0 && cfg.n_papers > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut st = RdfStore::new();
    let mut truth = DblpGroundTruth::default();

    let rdf_type = Term::iri(RDF_TYPE);

    // Venues: venue v has topic v % n_topics.
    for i in 0..cfg.n_venues {
        st.insert(Term::iri(v::venue(i)), rdf_type.clone(), Term::iri(v::VENUE));
        st.insert(Term::iri(v::venue(i)), Term::iri(v::NAME), Term::str(format!("Venue {i}")));
    }
    // Affiliations.
    for i in 0..cfg.n_affiliations {
        st.insert(Term::iri(v::affiliation(i)), rdf_type.clone(), Term::iri(v::AFFILIATION));
        st.insert(
            Term::iri(v::affiliation(i)),
            Term::iri(v::NAME),
            Term::str(format!("Institute {i}")),
        );
    }
    // Keywords.
    for i in 0..cfg.n_keywords {
        st.insert(Term::iri(v::keyword(i)), rdf_type.clone(), Term::iri(v::KEYWORD));
    }

    // Authors: topic + affiliation (affiliation correlated with topic).
    for i in 0..cfg.n_authors {
        let topic = rng.gen_range(0..cfg.n_topics);
        // Affiliations cluster by topic: authors of one topic concentrate in
        // a handful of institutes.
        let aff = if rng.gen_bool(cfg.affiliation_cohesion) {
            (topic * 7 + rng.gen_range(0..2)) % cfg.n_affiliations
        } else {
            rng.gen_range(0..cfg.n_affiliations)
        };
        truth.author_topic.push(topic);
        truth.author_affiliation.push(aff);
        let a = Term::iri(v::author(i));
        st.insert(a.clone(), rdf_type.clone(), Term::iri(v::PERSON));
        st.insert(a.clone(), Term::iri(v::NAME), Term::str(format!("Author {i}")));
        st.insert(a.clone(), Term::iri(v::AFFILIATED_WITH), Term::iri(v::affiliation(aff)));
        // Affiliation history (the paper's LP task predicts the primary
        // affiliation "based on their publications and affiliations
        // history"): the primary usually appears in the history, plus one
        // earlier institute from the same topical cluster.
        if rng.gen_bool(0.7) {
            st.insert(a.clone(), Term::iri(v::PAST_AFFILIATION), Term::iri(v::affiliation(aff)));
        }
        let earlier = (topic * 7 + rng.gen_range(0..4)) % cfg.n_affiliations;
        st.insert(a, Term::iri(v::PAST_AFFILIATION), Term::iri(v::affiliation(earlier)));
    }

    // Index authors by topic for co-author sampling.
    let mut authors_by_topic: Vec<Vec<usize>> = vec![Vec::new(); cfg.n_topics];
    for (i, &t) in truth.author_topic.iter().enumerate() {
        authors_by_topic[t].push(i);
    }
    // Venues by topic.
    let mut venues_by_topic: Vec<Vec<usize>> = vec![Vec::new(); cfg.n_topics];
    for i in 0..cfg.n_venues {
        venues_by_topic[i % cfg.n_topics].push(i);
    }

    // Papers.
    let mut papers_by_topic: Vec<Vec<usize>> = vec![Vec::new(); cfg.n_topics];
    for i in 0..cfg.n_papers {
        let topic = rng.gen_range(0..cfg.n_topics);
        truth.paper_topic.push(topic);
        let p = Term::iri(v::paper(i));
        st.insert(p.clone(), rdf_type.clone(), Term::iri(v::PUBLICATION));
        st.insert(p.clone(), Term::iri(v::TITLE), Term::str(format!("Paper {i} on topic {topic}")));
        st.insert(p.clone(), Term::iri(v::YEAR_OF_PUBLICATION), Term::int(1990 + (i % 34) as i64));

        // Venue label: topic-consistent with probability `venue_signal`.
        let venue = if rng.gen_bool(cfg.venue_signal) && !venues_by_topic[topic].is_empty() {
            *venues_by_topic[topic].choose(&mut rng).expect("non-empty")
        } else {
            rng.gen_range(0..cfg.n_venues)
        };
        truth.paper_venue.push(venue);
        st.insert(p.clone(), Term::iri(v::PUBLISHED_IN), Term::iri(v::venue(venue)));

        // Authors: mostly same-topic.
        let n_auth = rng.gen_range(1..=cfg.max_authors_per_paper);
        let mut chosen = Vec::with_capacity(n_auth);
        for _ in 0..n_auth {
            let pool = if rng.gen_bool(0.85) && !authors_by_topic[topic].is_empty() {
                &authors_by_topic[topic]
            } else {
                // any topic
                &authors_by_topic[rng.gen_range(0..cfg.n_topics)]
            };
            if pool.is_empty() {
                continue;
            }
            let a = *pool.choose(&mut rng).expect("non-empty");
            if !chosen.contains(&a) {
                chosen.push(a);
            }
        }
        for &a in &chosen {
            st.insert(p.clone(), Term::iri(v::AUTHORED_BY), Term::iri(v::author(a)));
        }
        // Note: like the real DBLP dump, co-authorship is *only* mediated by
        // publication nodes (paper --authoredBy--> author); there is no
        // direct author-author edge. This is why the bidirectional d2h1
        // meta-sampling scope is essential for the affiliation LP task
        // (paper §IV.B.2): outgoing-only scopes cannot see co-authors.

        // Citations to same-topic earlier papers.
        let n_cites = poisson_like(&mut rng, cfg.citations_per_paper);
        for _ in 0..n_cites {
            let pool =
                if rng.gen_bool(0.85) { &papers_by_topic[topic] } else { &truth.paper_topic };
            if pool.is_empty() {
                continue;
            }
            let target = if rng.gen_bool(0.85) && !papers_by_topic[topic].is_empty() {
                *papers_by_topic[topic].choose(&mut rng).expect("non-empty")
            } else if i > 0 {
                rng.gen_range(0..i)
            } else {
                continue;
            };
            if target != i {
                st.insert(p.clone(), Term::iri(v::CITES), Term::iri(v::paper(target)));
            }
        }

        // A couple of keywords (outgoing, weakly informative).
        if cfg.n_keywords > 0 {
            let k = (topic * 3 + rng.gen_range(0..3)) % cfg.n_keywords;
            st.insert(p.clone(), Term::iri(v::HAS_KEYWORD), Term::iri(v::keyword(k)));
        }

        papers_by_topic[topic].push(i);
    }

    // Distractor web: entities of `distractor_classes` classes, connected to
    // papers/authors mostly via *incoming* edges (so d1h1 from papers prunes
    // them) and to each other (2+ hops away from any target).
    let n_classes = cfg.distractor_classes;
    let n_edge_types = cfg.distractor_edge_types.max(1);
    for k in 0..n_classes {
        for i in 0..cfg.distractor_entities_per_class {
            let e = Term::iri(v::distractor_entity(k, i));
            st.insert(e.clone(), rdf_type.clone(), Term::iri(v::distractor_class(k)));
            // Distractor-to-distractor chain (beyond 1 hop from targets).
            if i > 0 {
                let prev = Term::iri(v::distractor_entity(k, i - 1));
                st.insert(e.clone(), Term::iri(v::distractor_edge(k % n_edge_types)), prev);
            }
        }
    }
    // Distractor edge mix, mirroring where the irrelevant mass of the real
    // DBLP dump lives: mostly metadata pointing *at* publications (pruned by
    // d1h1 from papers and 2 hops from authors), a dense
    // distractor-to-distractor web (outside every task neighbourhood), and
    // a small share touching authors (which survives d2h1 — KG' is smaller,
    // not noise-free).
    let total_distractor_edges =
        (cfg.n_papers as f64 * cfg.distractor_edges_per_paper).round() as usize;
    for _ in 0..total_distractor_edges {
        let k = rng.gen_range(0..n_classes.max(1));
        let i = rng.gen_range(0..cfg.distractor_entities_per_class.max(1));
        let e = Term::iri(v::distractor_entity(k, i));
        let et = Term::iri(v::distractor_edge(rng.gen_range(0..n_edge_types)));
        let roll: f64 = rng.gen();
        if roll < 0.55 {
            // metadata -> paper (incoming onto targets)
            let target = Term::iri(v::paper(rng.gen_range(0..cfg.n_papers)));
            st.insert(e, et, target);
        } else if roll < 0.90 {
            // distractor web
            let k2 = rng.gen_range(0..n_classes.max(1));
            let i2 = rng.gen_range(0..cfg.distractor_entities_per_class.max(1));
            st.insert(e, et, Term::iri(v::distractor_entity(k2, i2)));
        } else if roll < 0.95 {
            // metadata -> author
            let a = Term::iri(v::author(rng.gen_range(0..cfg.n_authors)));
            st.insert(e, et, a);
        } else {
            // author -> metadata
            let a = Term::iri(v::author(rng.gen_range(0..cfg.n_authors)));
            st.insert(a, et, e);
        }
    }

    (st, truth)
}

/// Cheap Poisson-ish sampler (geometric clamp) for small means.
fn poisson_like(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let mut n = 0usize;
    let p = mean / (1.0 + mean);
    while n < (4.0 * mean).ceil() as usize && rng.gen_bool(p) {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let (a, _) = generate(&DblpConfig::tiny(7));
        let (b, _) = generate(&DblpConfig::tiny(7));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.to_ntriples(), b.to_ntriples());
    }

    #[test]
    fn every_paper_has_type_venue_and_title() {
        let cfg = DblpConfig::tiny(1);
        let (st, truth) = generate(&cfg);
        for i in 0..cfg.n_papers {
            let p = Term::iri(v::paper(i));
            assert!(st.contains(&p, &Term::iri(RDF_TYPE), &Term::iri(v::PUBLICATION)));
            let venue = Term::iri(v::venue(truth.paper_venue[i]));
            assert!(st.contains(&p, &Term::iri(v::PUBLISHED_IN), &venue));
        }
    }

    #[test]
    fn venue_labels_correlate_with_topics() {
        let cfg = DblpConfig::small(3);
        let (_, truth) = generate(&cfg);
        let consistent = truth
            .paper_topic
            .iter()
            .zip(&truth.paper_venue)
            .filter(|&(&t, &v)| v % cfg.n_topics == t)
            .count();
        let rate = consistent as f64 / cfg.n_papers as f64;
        assert!(rate > 0.8, "venue/topic consistency too low: {rate}");
    }

    #[test]
    fn node_and_edge_type_counts_match_config_shape() {
        let cfg = DblpConfig::tiny(5);
        let (st, _) = generate(&cfg);
        let q =
            kgnet_rdf::query(&st, "SELECT (COUNT(DISTINCT ?t) AS ?n) WHERE { ?s a ?t }").unwrap();
        let n_types = q.rows[0][0].as_ref().unwrap().as_int().unwrap() as usize;
        // 5 core classes + distractor classes.
        assert_eq!(n_types, 5 + cfg.distractor_classes);
    }

    #[test]
    fn authors_have_affiliations() {
        let cfg = DblpConfig::tiny(2);
        let (st, truth) = generate(&cfg);
        for i in 0..cfg.n_authors {
            let a = Term::iri(v::author(i));
            let aff = Term::iri(v::affiliation(truth.author_affiliation[i]));
            assert!(st.contains(&a, &Term::iri(v::AFFILIATED_WITH), &aff));
        }
    }

    #[test]
    fn scaled_config_grows_entities() {
        let cfg = DblpConfig::tiny(1).scaled(2.0);
        assert_eq!(cfg.n_papers, 120);
        assert_eq!(cfg.n_authors, 60);
    }
}
