//! Synthetic YAGO4-shaped knowledge graph generator.
//!
//! Substitutes for the 400M-triple YAGO-4 dump used by the paper's Fig. 14
//! (place -> country node classification). The latent country of each place
//! drives its region membership and neighbourhood, so the label is learnable
//! from the 1-hop task-relevant structure, while a large distractor web of
//! people/organizations/aux classes reproduces Table I's ~104 node types /
//! ~98 edge types shape and gives the meta-sampler something to prune.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use kgnet_rdf::term::RDF_TYPE;
use kgnet_rdf::{RdfStore, Term};

use crate::vocab::yago as v;

/// Configuration for the YAGO4 generator.
#[derive(Debug, Clone)]
pub struct YagoConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of places (the NC targets).
    pub n_places: usize,
    /// Number of countries (the NC classes; 200 in Table I).
    pub n_countries: usize,
    /// Regions per country.
    pub regions_per_country: usize,
    /// Probability a place's region belongs to its true country.
    pub region_signal: f64,
    /// Probability a `nearTo` neighbour shares the country.
    pub neighbor_signal: f64,
    /// Mean `nearTo` edges per place.
    pub neighbors_per_place: f64,
    /// Number of people (distractor-ish but realistic).
    pub n_people: usize,
    /// Number of organizations.
    pub n_organizations: usize,
    /// Number of distractor node classes.
    pub distractor_classes: usize,
    /// Number of distractor edge types.
    pub distractor_edge_types: usize,
    /// Distractor entities per class.
    pub distractor_entities_per_class: usize,
    /// Mean distractor edges per place.
    pub distractor_edges_per_place: f64,
}

impl YagoConfig {
    /// Tiny graph for unit tests.
    pub fn tiny(seed: u64) -> Self {
        YagoConfig {
            seed,
            n_places: 80,
            n_countries: 6,
            regions_per_country: 2,
            region_signal: 0.9,
            neighbor_signal: 0.85,
            neighbors_per_place: 2.0,
            n_people: 40,
            n_organizations: 20,
            distractor_classes: 8,
            distractor_edge_types: 8,
            distractor_entities_per_class: 10,
            distractor_edges_per_place: 2.0,
        }
    }

    /// Small graph for integration tests.
    pub fn small(seed: u64) -> Self {
        YagoConfig {
            seed,
            n_places: 900,
            n_countries: 12,
            regions_per_country: 3,
            region_signal: 0.88,
            neighbor_signal: 0.85,
            neighbors_per_place: 3.0,
            n_people: 500,
            n_organizations: 200,
            distractor_classes: 20,
            distractor_edge_types: 20,
            distractor_entities_per_class: 40,
            distractor_edges_per_place: 3.0,
        }
    }

    /// Benchmark-scale graph matching Table I's shape: 104 node types,
    /// ~98 edge types, 200 countries.
    pub fn benchmark(seed: u64) -> Self {
        YagoConfig {
            seed,
            n_places: 7_000,
            n_countries: 200,
            regions_per_country: 2,
            region_signal: 0.9,
            neighbor_signal: 0.85,
            neighbors_per_place: 4.0,
            n_people: 3_000,
            n_organizations: 1_200,
            // 5 core classes + 99 distractors = 104 node types.
            distractor_classes: 99,
            // ~8 core predicates + 90 distractors = 98 edge types.
            distractor_edge_types: 90,
            distractor_entities_per_class: 60,
            distractor_edges_per_place: 6.0,
        }
    }

    /// Scale entity counts by `f`.
    pub fn scaled(mut self, f: f64) -> Self {
        let scale = |n: usize| ((n as f64 * f).round() as usize).max(1);
        self.n_places = scale(self.n_places);
        self.n_people = scale(self.n_people);
        self.n_organizations = scale(self.n_organizations);
        self.distractor_entities_per_class = scale(self.distractor_entities_per_class);
        self
    }
}

/// Ground truth emitted alongside the graph.
#[derive(Debug, Clone, Default)]
pub struct YagoGroundTruth {
    /// Country index of each place (the NC label).
    pub place_country: Vec<usize>,
}

/// Generate the synthetic YAGO4 KG.
pub fn generate(cfg: &YagoConfig) -> (RdfStore, YagoGroundTruth) {
    assert!(cfg.n_countries > 0 && cfg.n_places > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut st = RdfStore::new();
    let mut truth = YagoGroundTruth::default();
    let rdf_type = Term::iri(RDF_TYPE);

    // Countries and regions.
    for c in 0..cfg.n_countries {
        st.insert(Term::iri(v::country(c)), rdf_type.clone(), Term::iri(v::COUNTRY));
        for r in 0..cfg.regions_per_country {
            let region = Term::iri(v::region(c * cfg.regions_per_country + r));
            st.insert(region.clone(), rdf_type.clone(), Term::iri(v::REGION));
            st.insert(region, Term::iri(v::REGION_OF), Term::iri(v::country(c)));
        }
    }

    // Places.
    let mut places_by_country: Vec<Vec<usize>> = vec![Vec::new(); cfg.n_countries];
    for i in 0..cfg.n_places {
        let country = rng.gen_range(0..cfg.n_countries);
        truth.place_country.push(country);
        let p = Term::iri(v::place(i));
        st.insert(p.clone(), rdf_type.clone(), Term::iri(v::PLACE));
        st.insert(p.clone(), Term::iri(v::LABEL), Term::str(format!("Place {i}")));
        st.insert(p.clone(), Term::iri(v::POPULATION), Term::int(rng.gen_range(1_000..1_000_000)));
        // Label edge.
        st.insert(p.clone(), Term::iri(v::LOCATED_IN_COUNTRY), Term::iri(v::country(country)));
        // Region membership (signal).
        let region_country = if rng.gen_bool(cfg.region_signal) {
            country
        } else {
            rng.gen_range(0..cfg.n_countries)
        };
        let region =
            region_country * cfg.regions_per_country + rng.gen_range(0..cfg.regions_per_country);
        st.insert(p.clone(), Term::iri(v::IN_REGION), Term::iri(v::region(region)));
        // Neighbours (signal).
        let n_nb = poisson_like(&mut rng, cfg.neighbors_per_place);
        for _ in 0..n_nb {
            let nb_country = if rng.gen_bool(cfg.neighbor_signal) {
                country
            } else {
                rng.gen_range(0..cfg.n_countries)
            };
            if let Some(&nb) = places_by_country[nb_country].choose(&mut rng) {
                if nb != i {
                    st.insert(p.clone(), Term::iri(v::NEAR_TO), Term::iri(v::place(nb)));
                }
            }
        }
        places_by_country[country].push(i);
    }

    // People born in places (incoming edges to targets).
    for i in 0..cfg.n_people {
        let person = Term::iri(v::person(i));
        st.insert(person.clone(), rdf_type.clone(), Term::iri(v::PERSON));
        let place = rng.gen_range(0..cfg.n_places);
        st.insert(person, Term::iri(v::BORN_IN), Term::iri(v::place(place)));
    }
    // Organizations headquartered in places (incoming).
    for i in 0..cfg.n_organizations {
        let org = Term::iri(v::organization(i));
        st.insert(org.clone(), rdf_type.clone(), Term::iri(v::ORGANIZATION));
        let place = rng.gen_range(0..cfg.n_places);
        st.insert(org, Term::iri(v::HEADQUARTERED_IN), Term::iri(v::place(place)));
    }

    // Distractor web.
    let n_classes = cfg.distractor_classes;
    let n_edge_types = cfg.distractor_edge_types.max(1);
    for k in 0..n_classes {
        for i in 0..cfg.distractor_entities_per_class {
            let e = Term::iri(v::distractor_entity(k, i));
            st.insert(e.clone(), rdf_type.clone(), Term::iri(v::distractor_class(k)));
            if i > 0 {
                let prev = Term::iri(v::distractor_entity(k, i - 1));
                st.insert(e.clone(), Term::iri(v::distractor_edge(k % n_edge_types)), prev);
            }
        }
    }
    let total = (cfg.n_places as f64 * cfg.distractor_edges_per_place).round() as usize;
    for _ in 0..total {
        let k = rng.gen_range(0..n_classes.max(1));
        let i = rng.gen_range(0..cfg.distractor_entities_per_class.max(1));
        let e = Term::iri(v::distractor_entity(k, i));
        let et = Term::iri(v::distractor_edge(rng.gen_range(0..n_edge_types)));
        // Mostly incoming onto places so d1h1 prunes them.
        if rng.gen_bool(0.85) {
            let p = Term::iri(v::place(rng.gen_range(0..cfg.n_places)));
            st.insert(e, et, p);
        } else {
            let p = Term::iri(v::place(rng.gen_range(0..cfg.n_places)));
            st.insert(p, et, e);
        }
    }

    (st, truth)
}

fn poisson_like(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let mut n = 0usize;
    let p = mean / (1.0 + mean);
    while n < (4.0 * mean).ceil() as usize && rng.gen_bool(p) {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = generate(&YagoConfig::tiny(9));
        let (b, _) = generate(&YagoConfig::tiny(9));
        assert_eq!(a.to_ntriples(), b.to_ntriples());
    }

    #[test]
    fn every_place_has_country_label_edge() {
        let cfg = YagoConfig::tiny(1);
        let (st, truth) = generate(&cfg);
        for i in 0..cfg.n_places {
            let p = Term::iri(v::place(i));
            let c = Term::iri(v::country(truth.place_country[i]));
            assert!(st.contains(&p, &Term::iri(v::LOCATED_IN_COUNTRY), &c));
        }
    }

    #[test]
    fn regions_mostly_match_country() {
        let cfg = YagoConfig::small(2);
        let (st, truth) = generate(&cfg);
        let mut consistent = 0usize;
        let mut total = 0usize;
        let in_region = st.lookup(&Term::iri(v::IN_REGION)).unwrap();
        for (i, &c) in truth.place_country.iter().enumerate() {
            let p = st.lookup(&Term::iri(v::place(i))).unwrap();
            for (_, _, region) in st.matches(Some(p), Some(in_region), None) {
                let iri = st.resolve(region).as_iri().unwrap().to_owned();
                let idx: usize = iri.rsplit("region").next().unwrap().parse().unwrap();
                total += 1;
                if idx / cfg.regions_per_country == c {
                    consistent += 1;
                }
            }
        }
        assert!(consistent as f64 / total as f64 > 0.8);
    }

    #[test]
    fn type_count_matches_shape() {
        let cfg = YagoConfig::tiny(3);
        let (st, _) = generate(&cfg);
        let q =
            kgnet_rdf::query(&st, "SELECT (COUNT(DISTINCT ?t) AS ?n) WHERE { ?s a ?t }").unwrap();
        let n = q.rows[0][0].as_ref().unwrap().as_int().unwrap() as usize;
        assert_eq!(n, 5 + cfg.distractor_classes);
    }
}
