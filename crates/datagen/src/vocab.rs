//! Vocabulary (IRI constants) for the synthetic knowledge graphs.

/// DBLP-shaped vocabulary, mirroring the RDF dump of dblp.org used by the
/// paper (Table I: 42 node types, 48 edge types, 50 venues).
pub mod dblp {
    /// Namespace base.
    pub const NS: &str = "https://www.dblp.org/";

    /// Publication class.
    pub const PUBLICATION: &str = "https://www.dblp.org/Publication";
    /// Person (author) class.
    pub const PERSON: &str = "https://www.dblp.org/Person";
    /// Venue class.
    pub const VENUE: &str = "https://www.dblp.org/Venue";
    /// Affiliation (institution) class.
    pub const AFFILIATION: &str = "https://www.dblp.org/Affiliation";
    /// Keyword class.
    pub const KEYWORD: &str = "https://www.dblp.org/Keyword";

    /// Paper -> Venue (the node-classification label edge).
    pub const PUBLISHED_IN: &str = "https://www.dblp.org/publishedIn";
    /// Paper -> Person.
    pub const AUTHORED_BY: &str = "https://www.dblp.org/authoredBy";
    /// Paper -> Paper.
    pub const CITES: &str = "https://www.dblp.org/cites";
    /// Person -> Affiliation (the link-prediction target edge: the
    /// *primary* affiliation).
    pub const AFFILIATED_WITH: &str = "https://www.dblp.org/affiliatedWith";
    /// Person -> Affiliation (affiliation history; context for the LP task,
    /// which the paper describes as predicting the affiliation link "based
    /// on their publications and affiliations history").
    pub const PAST_AFFILIATION: &str = "https://www.dblp.org/pastAffiliation";
    /// Person -> Person (derived collaboration edge).
    pub const COLLABORATES_WITH: &str = "https://www.dblp.org/collaboratesWith";
    /// Paper -> Keyword.
    pub const HAS_KEYWORD: &str = "https://www.dblp.org/hasKeyword";
    /// Paper -> literal title.
    pub const TITLE: &str = "https://www.dblp.org/title";
    /// Paper -> literal year.
    pub const YEAR_OF_PUBLICATION: &str = "https://www.dblp.org/yearOfPublication";
    /// Person -> literal name.
    pub const NAME: &str = "https://www.dblp.org/name";

    /// IRI of a distractor node class `k`.
    pub fn distractor_class(k: usize) -> String {
        format!("{NS}aux/Class{k}")
    }

    /// IRI of a distractor edge type `k`.
    pub fn distractor_edge(k: usize) -> String {
        format!("{NS}aux/rel{k}")
    }

    /// IRI of paper `i`.
    pub fn paper(i: usize) -> String {
        format!("{NS}rec/paper{i}")
    }

    /// IRI of author `i`.
    pub fn author(i: usize) -> String {
        format!("{NS}pid/author{i}")
    }

    /// IRI of venue `i`.
    pub fn venue(i: usize) -> String {
        format!("{NS}venue/v{i}")
    }

    /// IRI of affiliation `i`.
    pub fn affiliation(i: usize) -> String {
        format!("{NS}org/aff{i}")
    }

    /// IRI of keyword `i`.
    pub fn keyword(i: usize) -> String {
        format!("{NS}kw/k{i}")
    }

    /// IRI of distractor entity `i` of class `k`.
    pub fn distractor_entity(k: usize, i: usize) -> String {
        format!("{NS}aux/e{k}_{i}")
    }
}

/// YAGO4-shaped vocabulary (Table I: 104 node types, 98 edge types,
/// 200 country targets).
pub mod yago {
    /// Namespace base.
    pub const NS: &str = "http://yago-knowledge.org/resource/";

    /// Place class (the classification targets).
    pub const PLACE: &str = "http://yago-knowledge.org/resource/Place";
    /// Country class (the labels).
    pub const COUNTRY: &str = "http://yago-knowledge.org/resource/Country";
    /// Administrative region class.
    pub const REGION: &str = "http://yago-knowledge.org/resource/Region";
    /// Person class.
    pub const PERSON: &str = "http://yago-knowledge.org/resource/Person";
    /// Organization class.
    pub const ORGANIZATION: &str = "http://yago-knowledge.org/resource/Organization";

    /// Place -> Country (the node-classification label edge).
    pub const LOCATED_IN_COUNTRY: &str = "http://yago-knowledge.org/resource/locatedInCountry";
    /// Place -> Region.
    pub const IN_REGION: &str = "http://yago-knowledge.org/resource/inRegion";
    /// Region -> Country.
    pub const REGION_OF: &str = "http://yago-knowledge.org/resource/regionOf";
    /// Place -> Place.
    pub const NEAR_TO: &str = "http://yago-knowledge.org/resource/nearTo";
    /// Person -> Place.
    pub const BORN_IN: &str = "http://yago-knowledge.org/resource/bornIn";
    /// Organization -> Place.
    pub const HEADQUARTERED_IN: &str = "http://yago-knowledge.org/resource/headquarteredIn";
    /// Place -> literal label.
    pub const LABEL: &str = "http://yago-knowledge.org/resource/label";
    /// Place -> literal population.
    pub const POPULATION: &str = "http://yago-knowledge.org/resource/population";

    /// IRI of a distractor node class `k`.
    pub fn distractor_class(k: usize) -> String {
        format!("{NS}aux/Class{k}")
    }

    /// IRI of a distractor edge type `k`.
    pub fn distractor_edge(k: usize) -> String {
        format!("{NS}aux/rel{k}")
    }

    /// IRI of place `i`.
    pub fn place(i: usize) -> String {
        format!("{NS}place{i}")
    }

    /// IRI of country `i`.
    pub fn country(i: usize) -> String {
        format!("{NS}country{i}")
    }

    /// IRI of region `i`.
    pub fn region(i: usize) -> String {
        format!("{NS}region{i}")
    }

    /// IRI of person `i`.
    pub fn person(i: usize) -> String {
        format!("{NS}person{i}")
    }

    /// IRI of organization `i`.
    pub fn organization(i: usize) -> String {
        format!("{NS}org{i}")
    }

    /// IRI of distractor entity `i` of class `k`.
    pub fn distractor_entity(k: usize, i: usize) -> String {
        format!("{NS}aux/e{k}_{i}")
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn iri_helpers_embed_indices() {
        assert!(super::dblp::paper(17).contains("paper17"));
        assert!(super::yago::place(3).ends_with("place3"));
        assert!(super::dblp::distractor_edge(5).contains("rel5"));
    }
}
