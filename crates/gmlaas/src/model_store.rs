//! Trained-model artifacts and the model registry (the paper's "Models &
//! Embeddings" store of Fig. 3, with `model.pkl` replaced by serde JSON).

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use kgnet_gml::config::{GmlMethodKind, TrainReport};

use crate::embedding_store::EmbeddingStore;

/// Task-type tag stored on an artifact (mirrors the `kgnet:` model classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// `kgnet:NodeClassifier`.
    NodeClassifier,
    /// `kgnet:LinkPredictor`.
    LinkPredictor,
    /// `kgnet:NodeSimilarity`.
    NodeSimilarity,
}

/// The task-specific payload of a trained model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ArtifactPayload {
    /// Node classifier: target IRI -> predicted class IRI.
    NodeClassifier {
        /// Prediction dictionary over every inferable target.
        predictions: HashMap<String, String>,
    },
    /// Link predictor: source IRI -> ranked `(destination IRI, score)`.
    LinkPredictor {
        /// Ranked candidate lists (already truncated to a stored k).
        topk: HashMap<String, Vec<(String, f32)>>,
    },
    /// Entity-similarity model backed by an embedding store.
    NodeSimilarity {
        /// The searchable embedding index.
        store: EmbeddingStore,
    },
}

/// A trained model with its KGMeta-relevant metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Unique model URI (minted by the training manager).
    pub uri: String,
    /// Task kind.
    pub task_kind: TaskKind,
    /// IRI of the task's target/source node type.
    pub target_type: String,
    /// IRI of the label predicate (NC) or predicted edge (LP).
    pub label_predicate: String,
    /// IRI of the destination type (LP only).
    pub destination_type: Option<String>,
    /// The GML method that produced the model.
    pub method: GmlMethodKind,
    /// Training/evaluation record.
    pub report: TrainReport,
    /// Sampler scope name used for `KG'` extraction (e.g. `d1h1`).
    pub sampler: String,
    /// Number of entities the model can answer for (the paper's "model
    /// cardinality", used by the query optimizer).
    pub cardinality: usize,
    /// The inference payload.
    pub payload: ArtifactPayload,
}

impl ModelArtifact {
    /// Model accuracy in `[0,1]` (test accuracy / Hits@10).
    pub fn accuracy(&self) -> f64 {
        self.report.test_metric
    }

    /// Per-call inference latency estimate in milliseconds.
    pub fn inference_time_ms(&self) -> f64 {
        self.report.inference_time_ms
    }
}

/// Thread-safe registry of trained models, keyed by URI.
#[derive(Default, Clone)]
pub struct ModelStore {
    inner: Arc<RwLock<HashMap<String, Arc<ModelArtifact>>>>,
}

impl ModelStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a model, replacing any previous artifact under its URI.
    pub fn insert(&self, artifact: ModelArtifact) -> Arc<ModelArtifact> {
        let arc = Arc::new(artifact);
        self.inner.write().insert(arc.uri.clone(), arc.clone());
        arc
    }

    /// Fetch a model by URI.
    pub fn get(&self, uri: &str) -> Option<Arc<ModelArtifact>> {
        self.inner.read().get(uri).cloned()
    }

    /// Delete a model; returns whether it existed.
    pub fn remove(&self, uri: &str) -> bool {
        self.inner.write().remove(uri).is_some()
    }

    /// All registered URIs.
    pub fn uris(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Number of stored models.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when no model is stored.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Persist every artifact as `<dir>/<sanitised-uri>.json`.
    pub fn save_dir(&self, dir: &Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let guard = self.inner.read();
        for artifact in guard.values() {
            let name = sanitise(&artifact.uri);
            let file = dir.join(format!("{name}.json"));
            let json = serde_json::to_string(artifact.as_ref())
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            std::fs::write(file, json)?;
        }
        Ok(guard.len())
    }

    /// Load every `*.json` artifact from a directory.
    pub fn load_dir(&self, dir: &Path) -> std::io::Result<usize> {
        let mut loaded = 0usize;
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json") {
                let json = std::fs::read_to_string(&path)?;
                let artifact: ModelArtifact = serde_json::from_str(&json)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
                self.insert(artifact);
                loaded += 1;
            }
        }
        Ok(loaded)
    }
}

fn sanitise(uri: &str) -> String {
    uri.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn dummy_artifact(uri: &str) -> ModelArtifact {
        ModelArtifact {
            uri: uri.to_owned(),
            task_kind: TaskKind::NodeClassifier,
            target_type: "http://x/Paper".into(),
            label_predicate: "http://x/venue".into(),
            destination_type: None,
            method: GmlMethodKind::Gcn,
            report: TrainReport {
                method: GmlMethodKind::Gcn,
                train_time_s: 1.0,
                peak_mem_bytes: 1024,
                test_metric: 0.9,
                valid_metric: 0.88,
                mrr: 0.0,
                loss_curve: vec![1.0, 0.5],
                n_nodes: 10,
                n_edges: 20,
                inference_time_ms: 0.5,
            },
            sampler: "d1h1".into(),
            cardinality: 10,
            payload: ArtifactPayload::NodeClassifier {
                predictions: [("http://x/p1".to_owned(), "http://x/v1".to_owned())]
                    .into_iter()
                    .collect(),
            },
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let store = ModelStore::new();
        store.insert(dummy_artifact("http://kgnet/m1"));
        assert_eq!(store.len(), 1);
        let m = store.get("http://kgnet/m1").unwrap();
        assert_eq!(m.accuracy(), 0.9);
        assert!(store.remove("http://kgnet/m1"));
        assert!(store.is_empty());
        assert!(!store.remove("http://kgnet/m1"));
    }

    #[test]
    fn save_and_load_directory() {
        let dir = std::env::temp_dir().join(format!("kgnet-models-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ModelStore::new();
        store.insert(dummy_artifact("http://kgnet/m1"));
        store.insert(dummy_artifact("http://kgnet/m2"));
        assert_eq!(store.save_dir(&dir).unwrap(), 2);
        let restored = ModelStore::new();
        assert_eq!(restored.load_dir(&dir).unwrap(), 2);
        assert!(restored.get("http://kgnet/m2").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
