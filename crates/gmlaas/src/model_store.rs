//! Trained-model artifacts and the model registry (the paper's "Models &
//! Embeddings" store of Fig. 3).
//!
//! Persistence routes embedding payloads through the `kgnet-ann` binary
//! columnar format: [`ModelStore::save_dir`] writes a NodeSimilarity
//! artifact as a small metadata JSON plus a checksummed `.ann` file, and
//! [`ModelStore::load_dir`] memory-maps the `.ann` back so the restored
//! store serves searches zero-copy. JSON stays the format for metadata
//! and the fallback reader for directories written before the binary
//! format existed (their full-JSON artifacts still load unchanged).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use kgnet_sync::RwLock;
use serde::{Deserialize, Serialize};

use kgnet_gml::config::{GmlMethodKind, TrainReport};

use crate::embedding_store::EmbeddingStore;

/// Task-type tag stored on an artifact (mirrors the `kgnet:` model classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// `kgnet:NodeClassifier`.
    NodeClassifier,
    /// `kgnet:LinkPredictor`.
    LinkPredictor,
    /// `kgnet:NodeSimilarity`.
    NodeSimilarity,
}

/// The task-specific payload of a trained model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ArtifactPayload {
    /// Node classifier: target IRI -> predicted class IRI.
    NodeClassifier {
        /// Prediction dictionary over every inferable target.
        predictions: HashMap<String, String>,
    },
    /// Link predictor: source IRI -> ranked `(destination IRI, score)`.
    LinkPredictor {
        /// Ranked candidate lists (already truncated to a stored k).
        topk: HashMap<String, Vec<(String, f32)>>,
    },
    /// Entity-similarity model backed by an embedding store.
    NodeSimilarity {
        /// The searchable embedding index.
        store: EmbeddingStore,
    },
}

/// A trained model with its KGMeta-relevant metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Unique model URI (minted by the training manager).
    pub uri: String,
    /// Task kind.
    pub task_kind: TaskKind,
    /// IRI of the task's target/source node type.
    pub target_type: String,
    /// IRI of the label predicate (NC) or predicted edge (LP).
    pub label_predicate: String,
    /// IRI of the destination type (LP only).
    pub destination_type: Option<String>,
    /// The GML method that produced the model.
    pub method: GmlMethodKind,
    /// Training/evaluation record.
    pub report: TrainReport,
    /// Sampler scope name used for `KG'` extraction (e.g. `d1h1`).
    pub sampler: String,
    /// Number of entities the model can answer for (the paper's "model
    /// cardinality", used by the query optimizer).
    pub cardinality: usize,
    /// Store generation (MVCC version) of the snapshot the model was
    /// trained against; `0` for standalone/ad-hoc training runs.
    pub trained_generation: u64,
    /// The inference payload.
    pub payload: ArtifactPayload,
}

impl ModelArtifact {
    /// Model accuracy in `[0,1]` (test accuracy / Hits@10).
    pub fn accuracy(&self) -> f64 {
        self.report.test_metric
    }

    /// Per-call inference latency estimate in milliseconds.
    pub fn inference_time_ms(&self) -> f64 {
        self.report.inference_time_ms
    }
}

/// Thread-safe registry of trained models, keyed by URI.
#[derive(Default, Clone)]
pub struct ModelStore {
    inner: Arc<RwLock<HashMap<String, Arc<ModelArtifact>>>>,
}

impl ModelStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a model, replacing any previous artifact under its URI.
    pub fn insert(&self, artifact: ModelArtifact) -> Arc<ModelArtifact> {
        let arc = Arc::new(artifact);
        self.inner.write().insert(arc.uri.clone(), arc.clone());
        arc
    }

    /// Fetch a model by URI.
    pub fn get(&self, uri: &str) -> Option<Arc<ModelArtifact>> {
        self.inner.read().get(uri).cloned()
    }

    /// Delete a model; returns whether it existed.
    pub fn remove(&self, uri: &str) -> bool {
        self.inner.write().remove(uri).is_some()
    }

    /// All registered URIs.
    pub fn uris(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Number of stored models.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when no model is stored.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Persist every artifact under `dir`: `<sanitised-uri>.json` for
    /// metadata and non-embedding payloads, plus `<sanitised-uri>.ann`
    /// (the binary columnar format) for NodeSimilarity embedding stores —
    /// whose JSON then carries only an empty stub store.
    pub fn save_dir(&self, dir: &Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let guard = self.inner.read();
        for artifact in guard.values() {
            let name = sanitise(&artifact.uri);
            let json_path = dir.join(format!("{name}.json"));
            let ann_path = dir.join(format!("{name}.ann"));
            let json = match &artifact.payload {
                ArtifactPayload::NodeSimilarity { store } if !store.is_empty() => {
                    store.save_binary(&ann_path).map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    })?;
                    // Metadata-only stub: the embedding payload lives in
                    // the sidecar (fields cloned individually so the big
                    // payload is never copied just to be dropped).
                    let stub = ModelArtifact {
                        uri: artifact.uri.clone(),
                        task_kind: artifact.task_kind,
                        target_type: artifact.target_type.clone(),
                        label_predicate: artifact.label_predicate.clone(),
                        destination_type: artifact.destination_type.clone(),
                        method: artifact.method,
                        report: artifact.report.clone(),
                        sampler: artifact.sampler.clone(),
                        cardinality: artifact.cardinality,
                        trained_generation: artifact.trained_generation,
                        payload: ArtifactPayload::NodeSimilarity {
                            store: EmbeddingStore::new(store.dim(), store.metric()),
                        },
                    };
                    serde_json::to_string(&stub)
                }
                _ => {
                    // No sidecar for this artifact: drop any stale one a
                    // previous save of the same URI left behind, so a
                    // later load cannot resurrect replaced embeddings.
                    match std::fs::remove_file(&ann_path) {
                        Ok(()) => {}
                        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                        Err(e) => return Err(e),
                    }
                    serde_json::to_string(artifact.as_ref())
                }
            };
            let json = json.map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            std::fs::write(json_path, json)?;
        }
        Ok(guard.len())
    }

    /// Load every artifact from a directory. Malformed files — unparsable
    /// JSON, or a corrupt/truncated `.ann` embedding file — are skipped
    /// and reported in the returned [`LoadReport`] instead of aborting
    /// the whole directory load; every healthy artifact still loads.
    ///
    /// A NodeSimilarity artifact whose sibling `.ann` file exists gets
    /// its embedding store memory-mapped from it; full-JSON artifacts
    /// (the pre-binary layout) load through the JSON fallback unchanged.
    pub fn load_dir(&self, dir: &Path) -> std::io::Result<LoadReport> {
        let mut report = LoadReport::default();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_none_or(|e| e != "json") {
                continue;
            }
            let mut artifact: ModelArtifact = match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|json| serde_json::from_str(&json).map_err(|e| e.to_string()))
            {
                Ok(a) => a,
                Err(e) => {
                    report.skipped.push((path, e));
                    continue;
                }
            };
            let ann_path = path.with_extension("ann");
            if matches!(artifact.payload, ArtifactPayload::NodeSimilarity { .. })
                && ann_path.exists()
            {
                match EmbeddingStore::load_binary(&ann_path) {
                    Ok(store) => {
                        artifact.payload = ArtifactPayload::NodeSimilarity { store };
                    }
                    Err(e) => {
                        report.skipped.push((ann_path, e.to_string()));
                        continue;
                    }
                }
            }
            self.insert(artifact);
            report.loaded += 1;
        }
        Ok(report)
    }
}

/// Outcome of a [`ModelStore::load_dir`]: how many artifacts loaded, and
/// which files were skipped (with the reason) instead of failing the
/// whole directory.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Artifacts successfully registered.
    pub loaded: usize,
    /// Skipped files and why each failed.
    pub skipped: Vec<(PathBuf, String)>,
}

fn sanitise(uri: &str) -> String {
    uri.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn dummy_artifact(uri: &str) -> ModelArtifact {
        ModelArtifact {
            uri: uri.to_owned(),
            task_kind: TaskKind::NodeClassifier,
            target_type: "http://x/Paper".into(),
            label_predicate: "http://x/venue".into(),
            destination_type: None,
            method: GmlMethodKind::Gcn,
            report: TrainReport {
                method: GmlMethodKind::Gcn,
                train_time_s: 1.0,
                peak_mem_bytes: 1024,
                test_metric: 0.9,
                valid_metric: 0.88,
                mrr: 0.0,
                loss_curve: vec![1.0, 0.5],
                n_nodes: 10,
                n_edges: 20,
                inference_time_ms: 0.5,
            },
            sampler: "d1h1".into(),
            cardinality: 10,
            trained_generation: 0,
            payload: ArtifactPayload::NodeClassifier {
                predictions: [("http://x/p1".to_owned(), "http://x/v1".to_owned())]
                    .into_iter()
                    .collect(),
            },
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let store = ModelStore::new();
        store.insert(dummy_artifact("http://kgnet/m1"));
        assert_eq!(store.len(), 1);
        let m = store.get("http://kgnet/m1").unwrap();
        assert_eq!(m.accuracy(), 0.9);
        assert!(store.remove("http://kgnet/m1"));
        assert!(store.is_empty());
        assert!(!store.remove("http://kgnet/m1"));
    }

    fn similarity_artifact(uri: &str, n: usize, seed: u64) -> ModelArtifact {
        use crate::embedding_store::Metric;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut store = EmbeddingStore::new(8, Metric::Cosine);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let v: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            store.add(format!("http://x/e{i}"), v).unwrap();
        }
        store.build_ivf(4, 3, seed);
        let mut a = dummy_artifact(uri);
        a.task_kind = TaskKind::NodeSimilarity;
        a.payload = ArtifactPayload::NodeSimilarity { store };
        a
    }

    #[test]
    fn save_and_load_directory() {
        let dir = std::env::temp_dir().join(format!("kgnet-models-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ModelStore::new();
        store.insert(dummy_artifact("http://kgnet/m1"));
        store.insert(dummy_artifact("http://kgnet/m2"));
        assert_eq!(store.save_dir(&dir).unwrap(), 2);
        let restored = ModelStore::new();
        let report = restored.load_dir(&dir).unwrap();
        assert_eq!((report.loaded, report.skipped.len()), (2, 0));
        assert!(restored.get("http://kgnet/m2").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn similarity_payloads_round_trip_through_binary_files() {
        let dir = std::env::temp_dir().join(format!("kgnet-models-bin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ModelStore::new();
        store.insert(similarity_artifact("http://kgnet/sim", 60, 5));
        store.save_dir(&dir).unwrap();
        // The embedding payload must live in the binary sidecar, not JSON.
        let ann = dir.join(format!("{}.ann", sanitise("http://kgnet/sim")));
        assert!(ann.exists(), "no binary embedding artifact written");
        let json =
            std::fs::read_to_string(dir.join(format!("{}.json", sanitise("http://kgnet/sim"))))
                .unwrap();
        assert!(!json.contains("http://x/e59"), "embedding keys leaked into the metadata JSON");

        let restored = ModelStore::new();
        let report = restored.load_dir(&dir).unwrap();
        assert_eq!((report.loaded, report.skipped.len()), (1, 0));
        let m = restored.get("http://kgnet/sim").unwrap();
        let ArtifactPayload::NodeSimilarity { store: emb } = &m.payload else {
            panic!("payload kind changed across persistence");
        };
        assert_eq!(emb.len(), 60);
        let orig = store.get("http://kgnet/sim").unwrap();
        let ArtifactPayload::NodeSimilarity { store: orig_emb } = &orig.payload else {
            unreachable!()
        };
        let q = orig_emb.get("http://x/e7").unwrap().to_vec();
        assert_eq!(orig_emb.search(&q, 5, 2), emb.search(&q, 5, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_files_are_skipped_and_reported() {
        let dir = std::env::temp_dir().join(format!("kgnet-models-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ModelStore::new();
        store.insert(dummy_artifact("http://kgnet/good"));
        store.insert(similarity_artifact("http://kgnet/sim", 30, 6));
        store.save_dir(&dir).unwrap();
        // One unparsable JSON file and one corrupted binary sidecar.
        std::fs::write(dir.join("broken.json"), "{ not json").unwrap();
        let ann = dir.join(format!("{}.ann", sanitise("http://kgnet/sim")));
        let mut bytes = std::fs::read(&ann).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&ann, bytes).unwrap();

        let restored = ModelStore::new();
        let report = restored.load_dir(&dir).unwrap();
        assert_eq!(report.loaded, 1, "the healthy artifact must still load");
        assert!(restored.get("http://kgnet/good").is_some());
        assert!(restored.get("http://kgnet/sim").is_none());
        assert_eq!(report.skipped.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replacing_an_artifact_drops_its_stale_sidecar() {
        let dir = std::env::temp_dir().join(format!("kgnet-models-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ModelStore::new();
        store.insert(similarity_artifact("http://kgnet/sim", 30, 8));
        store.save_dir(&dir).unwrap();
        let ann = dir.join(format!("{}.ann", sanitise("http://kgnet/sim")));
        assert!(ann.exists());

        // Replace the model with one whose embedding store is empty and
        // save again: the old sidecar must not survive to resurrect the
        // replaced embeddings on the next load.
        let mut empty = dummy_artifact("http://kgnet/sim");
        empty.task_kind = TaskKind::NodeSimilarity;
        empty.payload = ArtifactPayload::NodeSimilarity {
            store: EmbeddingStore::new(8, crate::embedding_store::Metric::Cosine),
        };
        store.insert(empty);
        store.save_dir(&dir).unwrap();
        assert!(!ann.exists(), "stale binary sidecar survived the re-save");

        let restored = ModelStore::new();
        let report = restored.load_dir(&dir).unwrap();
        assert_eq!((report.loaded, report.skipped.len()), (1, 0));
        let m = restored.get("http://kgnet/sim").unwrap();
        let ArtifactPayload::NodeSimilarity { store: emb } = &m.payload else {
            panic!("payload kind changed")
        };
        assert!(emb.is_empty(), "old embeddings resurrected from a stale sidecar");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_json_artifacts_load_as_fallback() {
        // Simulate a directory written before the binary format: the whole
        // artifact, embedding store included, serialized as one JSON file.
        let dir = std::env::temp_dir().join(format!("kgnet-models-old-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = similarity_artifact("http://kgnet/legacy", 40, 7);
        let json = serde_json::to_string(&artifact).unwrap();
        std::fs::write(dir.join("legacy.json"), json).unwrap();

        let restored = ModelStore::new();
        let report = restored.load_dir(&dir).unwrap();
        assert_eq!((report.loaded, report.skipped.len()), (1, 0));
        let m = restored.get("http://kgnet/legacy").unwrap();
        let ArtifactPayload::NodeSimilarity { store } = &m.payload else { panic!("wrong payload") };
        assert_eq!(store.len(), 40);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
