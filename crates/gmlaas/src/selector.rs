//! Optimal GML method selection under a task budget (Fig. 6, "Optimal GML
//! Method Selection").
//!
//! Candidates are filtered and ranked through the 0/1 integer program of the
//! paper: one binary per method, exactly one chosen, memory/time rows bound
//! by the budget, objective set by the budget priority.

use kgnet_gml::config::GmlMethodKind;
use kgnet_gml::estimate::{estimate, GraphDims, ResourceEstimate};
use kgnet_gml::GnnConfig;

use crate::budget::{Priority, TaskBudget};
use crate::ip::{solve, IntegerProgram};

/// One candidate row of the selection trace.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The method.
    pub method: GmlMethodKind,
    /// Its resource estimate on this problem.
    pub estimate: ResourceEstimate,
    /// Whether it fits the budget on its own.
    pub feasible: bool,
}

/// The decision record returned with the selection.
#[derive(Debug, Clone)]
pub struct SelectionTrace {
    /// All candidates with estimates.
    pub candidates: Vec<Candidate>,
    /// Chosen method, when any candidate was feasible.
    pub chosen: Option<GmlMethodKind>,
}

/// Select the near-optimal method for a problem under a budget.
pub fn select_method(
    methods: &[GmlMethodKind],
    dims: &GraphDims,
    cfg: &GnnConfig,
    budget: &TaskBudget,
) -> SelectionTrace {
    let candidates: Vec<Candidate> = methods
        .iter()
        .map(|&method| {
            let est = estimate(method, dims, cfg);
            let feasible = budget.max_memory_bytes.is_none_or(|cap| est.memory_bytes <= cap)
                && budget.max_time_s.is_none_or(|cap| est.time_s <= cap);
            Candidate { method, estimate: est, feasible }
        })
        .collect();

    // Integer program: pick exactly one method, subject to the budget rows.
    let n = candidates.len();
    let mut ip = IntegerProgram::new(n);
    for (i, c) in candidates.iter().enumerate() {
        ip.objective[i] = match budget.priority {
            Priority::ModelScore => c.estimate.expected_quality,
            // Minimisation becomes maximisation of the negated cost; the
            // epsilon keeps every option strictly better than "pick none"
            // (the equality row forbids that anyway).
            Priority::TrainingTime => -c.estimate.time_s,
            Priority::Memory => -(c.estimate.memory_bytes as f64),
        };
    }
    ip.add_eq(vec![1.0; n], 1.0);
    if let Some(cap) = budget.max_memory_bytes {
        ip.add_le(candidates.iter().map(|c| c.estimate.memory_bytes as f64).collect(), cap as f64);
    }
    if let Some(cap) = budget.max_time_s {
        ip.add_le(candidates.iter().map(|c| c.estimate.time_s).collect(), cap);
    }

    let chosen = solve(&ip).map(|sol| {
        let idx = sol.assignment.iter().position(|&x| x).expect("one method chosen");
        candidates[idx].method
    });
    SelectionTrace { candidates, chosen }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> GraphDims {
        GraphDims {
            n_nodes: 20_000,
            n_edges: 120_000,
            n_relations: 48,
            n_targets: 6_000,
            n_classes: 50,
        }
    }

    #[test]
    fn unlimited_budget_prefers_highest_quality() {
        let trace = select_method(
            &GmlMethodKind::NC_METHODS,
            &dims(),
            &GnnConfig::default(),
            &TaskBudget::unlimited(),
        );
        // ShadowSaint carries the highest quality prior.
        assert_eq!(trace.chosen, Some(GmlMethodKind::ShadowSaint));
        assert_eq!(trace.candidates.len(), 4);
    }

    #[test]
    fn tight_memory_budget_excludes_full_batch() {
        let cfg = GnnConfig::default();
        let rgcn_mem = estimate(GmlMethodKind::Rgcn, &dims(), &cfg).memory_bytes;
        let budget = TaskBudget::with_memory(rgcn_mem / 2);
        let trace = select_method(&GmlMethodKind::NC_METHODS, &dims(), &cfg, &budget);
        assert_ne!(trace.chosen, Some(GmlMethodKind::Rgcn));
        assert!(trace.chosen.is_some(), "a sampled method should fit");
        let rgcn = trace.candidates.iter().find(|c| c.method == GmlMethodKind::Rgcn).unwrap();
        assert!(!rgcn.feasible);
    }

    #[test]
    fn impossible_budget_selects_nothing() {
        let budget = TaskBudget::with_memory(16);
        let trace =
            select_method(&GmlMethodKind::NC_METHODS, &dims(), &GnnConfig::default(), &budget);
        assert_eq!(trace.chosen, None);
        assert!(trace.candidates.iter().all(|c| !c.feasible));
    }

    #[test]
    fn time_priority_picks_fastest() {
        let budget = TaskBudget { priority: Priority::TrainingTime, ..Default::default() };
        let trace =
            select_method(&GmlMethodKind::NC_METHODS, &dims(), &GnnConfig::default(), &budget);
        let chosen = trace.chosen.unwrap();
        let min = trace
            .candidates
            .iter()
            .min_by(|a, b| a.estimate.time_s.partial_cmp(&b.estimate.time_s).unwrap())
            .unwrap();
        assert_eq!(chosen, min.method);
    }
}
