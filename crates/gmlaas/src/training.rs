//! The GML Training Manager (Fig. 6): one entry point that takes a
//! task-specific subgraph `KG'`, a task and a budget, runs the automated
//! pipeline — data transformation, budget-constrained method selection,
//! training, evaluation — and packages the result as a [`ModelArtifact`].

use kgnet_sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kgnet_gml::config::{GmlMethodKind, GnnConfig};
use kgnet_gml::control::TrainControl;
use kgnet_gml::dataset::{build_lp_dataset, build_nc_dataset};
use kgnet_gml::estimate::GraphDims;
use kgnet_gml::lp::{kge, train_lp_ctl};
use kgnet_gml::nc::train_nc_ctl;
use kgnet_graph::{transform, GmlTask, SplitRatios, SplitStrategy};
use kgnet_rdf::RdfStore;

use crate::budget::TaskBudget;
use crate::embedding_store::{EmbeddingStore, Metric};
use crate::model_store::{ArtifactPayload, ModelArtifact, ModelStore, TaskKind};
use crate::selector::{select_method, SelectionTrace};

/// Stored top-k depth for link-prediction artifacts.
const STORED_TOPK: usize = 20;

/// A training request, as decoded from a SPARQL-ML `TrainGML` call.
#[derive(Debug, Clone)]
pub struct TrainRequest {
    /// Human-readable model name (used in the minted URI).
    pub name: String,
    /// The task.
    pub task: GmlTask,
    /// Resource budget.
    pub budget: TaskBudget,
    /// Hyper-parameters.
    pub cfg: GnnConfig,
    /// Expert override: skip selection and use this method.
    pub forced_method: Option<GmlMethodKind>,
    /// Split strategy for the transformer.
    pub split_strategy: SplitStrategy,
    /// Name of the sampler scope that produced `KG'` (recorded in KGMeta).
    pub sampler: String,
}

impl TrainRequest {
    /// A request with defaults for everything but the task.
    pub fn new(name: impl Into<String>, task: GmlTask) -> Self {
        TrainRequest {
            name: name.into(),
            task,
            budget: TaskBudget::unlimited(),
            cfg: GnnConfig::default(),
            forced_method: None,
            split_strategy: SplitStrategy::Random,
            sampler: "d1h1".into(),
        }
    }
}

/// Errors from the training manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// No method fits the requested budget.
    BudgetInfeasible,
    /// The task matched no targets/edges in the provided graph.
    EmptyTask,
    /// The run was cancelled mid-training; any partial result was discarded.
    Cancelled,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::BudgetInfeasible => write!(f, "no GML method fits the task budget"),
            TrainError::EmptyTask => write!(f, "task selects no targets in the graph"),
            TrainError::Cancelled => write!(f, "training cancelled before completion"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Outcome of a training run.
pub struct TrainOutcome {
    /// The registered artifact.
    pub artifact: Arc<ModelArtifact>,
    /// The method-selection trace (estimates per candidate).
    pub trace: SelectionTrace,
}

/// The training manager: owns the model registry and mints model URIs.
///
/// Cloning produces a handle over the *same* registry and URI counter, so
/// concurrent trainers (e.g. a server's training job queue next to the
/// query manager) never mint colliding URIs or diverge on visible models.
#[derive(Clone)]
pub struct TrainingManager {
    store: ModelStore,
    counter: Arc<AtomicU64>,
}

impl Default for TrainingManager {
    fn default() -> Self {
        Self::new(ModelStore::new())
    }
}

impl TrainingManager {
    /// Manager over an existing model store.
    pub fn new(store: ModelStore) -> Self {
        TrainingManager { store, counter: Arc::new(AtomicU64::new(1)) }
    }

    /// The shared model store.
    pub fn model_store(&self) -> &ModelStore {
        &self.store
    }

    /// Run the automated pipeline on a task-specific subgraph.
    ///
    /// Atomicity: the pipeline builds the complete [`ModelArtifact`] first
    /// and registers it in the model store as the single final step, so a
    /// failure anywhere (infeasible budget, empty task, a panicking trainer)
    /// leaves the registry exactly as it was — readers can never observe a
    /// half-trained model.
    pub fn train(
        &self,
        kg_prime: &RdfStore,
        req: &TrainRequest,
    ) -> Result<TrainOutcome, TrainError> {
        let (artifact, trace) = self.train_uncommitted(kg_prime, req)?;
        // The one commit point: nothing above touches the store.
        Ok(TrainOutcome { artifact: self.store.insert(artifact), trace })
    }

    /// Everything [`train`](Self::train) does short of the registry insert:
    /// the built artifact exists only on the caller's stack. Serving layers
    /// use this to interpose a cancellation checkpoint between training and
    /// commit, then insert into the [`model_store`](Self::model_store)
    /// together with their own metadata registration.
    pub fn train_uncommitted(
        &self,
        kg_prime: &RdfStore,
        req: &TrainRequest,
    ) -> Result<(ModelArtifact, SelectionTrace), TrainError> {
        self.train_uncommitted_ctl(kg_prime, req, TrainControl::NONE)
    }

    /// [`train_uncommitted`](Self::train_uncommitted) with a cancellation
    /// handle threaded into the trainer's epoch loop: a raised flag stops
    /// the run within one epoch and yields [`TrainError::Cancelled`] (the
    /// partial model is dropped, never built into an artifact).
    pub fn train_uncommitted_ctl(
        &self,
        kg_prime: &RdfStore,
        req: &TrainRequest,
        ctl: TrainControl<'_>,
    ) -> Result<(ModelArtifact, SelectionTrace), TrainError> {
        match &req.task {
            GmlTask::NodeClassification(nc) => self.train_nc_task(kg_prime, req, nc, ctl),
            GmlTask::LinkPrediction(lp) => self.train_lp_task(kg_prime, req, lp, ctl),
            GmlTask::EntitySimilarity { target_type } => {
                self.train_similarity(kg_prime, req, target_type, ctl)
            }
        }
    }

    fn mint_uri(&self, kind: &str, method: GmlMethodKind, name: &str) -> String {
        let id = self.counter.fetch_add(1, Ordering::Relaxed);
        let slug: String =
            name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '-' }).collect();
        format!("https://www.kgnet.com/model/{kind}/{}-{slug}-{id}", method.name())
    }

    fn train_nc_task(
        &self,
        kg: &RdfStore,
        req: &TrainRequest,
        task: &kgnet_graph::NcTask,
        ctl: TrainControl<'_>,
    ) -> Result<(ModelArtifact, SelectionTrace), TrainError> {
        let data =
            build_nc_dataset(kg, task, req.split_strategy, SplitRatios::default(), req.cfg.seed);
        if data.n_targets() == 0 || data.n_classes() == 0 {
            return Err(TrainError::EmptyTask);
        }
        let dims = GraphDims::of_nc(&data);
        let trace = match req.forced_method {
            Some(m) => SelectionTrace { candidates: vec![], chosen: Some(m) },
            None => select_method(&GmlMethodKind::NC_METHODS, &dims, &req.cfg, &req.budget),
        };
        let method = trace.chosen.ok_or(TrainError::BudgetInfeasible)?;
        let trained = train_nc_ctl(method, &data, &req.cfg, ctl);
        if ctl.is_cancelled() {
            return Err(TrainError::Cancelled);
        }

        let predictions = data
            .target_iris
            .iter()
            .zip(&trained.predictions)
            .map(|(iri, &class)| (iri.clone(), data.class_iris[class].clone()))
            .collect();
        let artifact = ModelArtifact {
            uri: self.mint_uri("nc", method, &req.name),
            task_kind: TaskKind::NodeClassifier,
            target_type: task.target_type.clone(),
            label_predicate: task.label_predicate.clone(),
            destination_type: None,
            method,
            report: trained.report,
            sampler: req.sampler.clone(),
            cardinality: data.n_targets(),
            trained_generation: 0,
            payload: ArtifactPayload::NodeClassifier { predictions },
        };
        Ok((artifact, trace))
    }

    fn train_lp_task(
        &self,
        kg: &RdfStore,
        req: &TrainRequest,
        task: &kgnet_graph::LpTask,
        ctl: TrainControl<'_>,
    ) -> Result<(ModelArtifact, SelectionTrace), TrainError> {
        let data = build_lp_dataset(kg, task, SplitRatios::default(), req.cfg.seed);
        if data.n_edges() == 0 || data.destinations.is_empty() {
            return Err(TrainError::EmptyTask);
        }
        let dims = GraphDims::of_lp(&data);
        let trace = match req.forced_method {
            Some(m) => SelectionTrace { candidates: vec![], chosen: Some(m) },
            None => select_method(&GmlMethodKind::LP_METHODS, &dims, &req.cfg, &req.budget),
        };
        let method = trace.chosen.ok_or(TrainError::BudgetInfeasible)?;
        let trained = train_lp_ctl(method, &data, &req.cfg, ctl);
        if ctl.is_cancelled() {
            return Err(TrainError::Cancelled);
        }

        let mut topk = std::collections::HashMap::with_capacity(data.sources.len());
        for (pos, iri) in data.source_iris.iter().enumerate() {
            let ranked: Vec<(String, f32)> = trained
                .topk(pos, STORED_TOPK)
                .into_iter()
                .map(|(j, s)| (data.destination_iris[j].clone(), s))
                .collect();
            topk.insert(iri.clone(), ranked);
        }
        let artifact = ModelArtifact {
            uri: self.mint_uri("lp", method, &req.name),
            task_kind: TaskKind::LinkPredictor,
            target_type: task.source_type.clone(),
            label_predicate: task.edge_predicate.clone(),
            destination_type: Some(task.dest_type.clone()),
            method,
            report: trained.report,
            sampler: req.sampler.clone(),
            cardinality: data.sources.len(),
            trained_generation: 0,
            payload: ArtifactPayload::LinkPredictor { topk },
        };
        Ok((artifact, trace))
    }

    fn train_similarity(
        &self,
        kg: &RdfStore,
        req: &TrainRequest,
        target_type: &str,
        ctl: TrainControl<'_>,
    ) -> Result<(ModelArtifact, SelectionTrace), TrainError> {
        let (graph, _stats) = transform(kg, &[]);
        if graph.n_nodes() == 0 {
            return Err(TrainError::EmptyTask);
        }
        let (embeddings, report) = kge::train_unsupervised_ctl(&graph, &req.cfg, ctl);
        if ctl.is_cancelled() {
            return Err(TrainError::Cancelled);
        }

        let mut store = EmbeddingStore::new(embeddings.cols(), Metric::Cosine);
        let wanted_type = graph.node_type_id(&format!("<{target_type}>"));
        let mut cardinality = 0usize;
        for node in 0..graph.n_nodes() as u32 {
            if let Some(t) = wanted_type {
                if graph.node_type(node) != t {
                    continue;
                }
            }
            let term = graph.term_of(node);
            let iri = match kg.resolve(term) {
                kgnet_rdf::Term::Iri(i) => i.clone(),
                other => other.to_string(),
            };
            store
                .add(iri, embeddings.row(node as usize).to_vec())
                .expect("KGE embedding rows all share the trained output width");
            cardinality += 1;
        }
        if cardinality == 0 {
            return Err(TrainError::EmptyTask);
        }
        store.build_ivf((cardinality / 16).clamp(1, 256), 4, req.cfg.seed);

        let artifact = ModelArtifact {
            uri: self.mint_uri("sim", GmlMethodKind::TransE, &req.name),
            task_kind: TaskKind::NodeSimilarity,
            target_type: target_type.to_owned(),
            label_predicate: String::new(),
            destination_type: None,
            method: GmlMethodKind::TransE,
            report,
            sampler: req.sampler.clone(),
            cardinality,
            trained_generation: 0,
            payload: ArtifactPayload::NodeSimilarity { store },
        };
        let trace = SelectionTrace { candidates: vec![], chosen: Some(GmlMethodKind::TransE) };
        Ok((artifact, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgnet_datagen::vocab::dblp as v;
    use kgnet_datagen::{generate_dblp, DblpConfig};
    use kgnet_graph::{LpTask, NcTask};

    fn tiny_store() -> RdfStore {
        generate_dblp(&DblpConfig::tiny(31)).0
    }

    fn nc_task() -> GmlTask {
        GmlTask::NodeClassification(NcTask {
            target_type: v::PUBLICATION.into(),
            label_predicate: v::PUBLISHED_IN.into(),
        })
    }

    #[test]
    fn nc_training_produces_registered_artifact() {
        let st = tiny_store();
        let mgr = TrainingManager::default();
        let mut req = TrainRequest::new("paper-venue", nc_task());
        req.cfg = GnnConfig::fast_test();
        let out = mgr.train(&st, &req).unwrap();
        assert!(out.artifact.uri.contains("/model/nc/"));
        assert_eq!(out.artifact.task_kind, TaskKind::NodeClassifier);
        assert!(out.artifact.cardinality > 0);
        assert!(mgr.model_store().get(&out.artifact.uri).is_some());
        match &out.artifact.payload {
            ArtifactPayload::NodeClassifier { predictions } => {
                assert_eq!(predictions.len(), out.artifact.cardinality);
                let class = predictions.values().next().unwrap();
                assert!(class.contains("venue"), "prediction should be a venue IRI: {class}");
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn lp_training_produces_topk_lists() {
        let st = tiny_store();
        let mgr = TrainingManager::default();
        let mut req = TrainRequest::new(
            "author-affiliation",
            GmlTask::LinkPrediction(LpTask {
                source_type: v::PERSON.into(),
                edge_predicate: v::AFFILIATED_WITH.into(),
                dest_type: v::AFFILIATION.into(),
            }),
        );
        req.cfg = GnnConfig { epochs: 10, ..GnnConfig::fast_test() };
        req.forced_method = Some(GmlMethodKind::Morse);
        let out = mgr.train(&st, &req).unwrap();
        match &out.artifact.payload {
            ArtifactPayload::LinkPredictor { topk } => {
                assert!(!topk.is_empty());
                let links = topk.values().next().unwrap();
                assert!(!links.is_empty());
                assert!(links[0].1 >= links[links.len() - 1].1, "topk not sorted");
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn similarity_training_builds_search_index() {
        let st = tiny_store();
        let mgr = TrainingManager::default();
        let mut req = TrainRequest::new(
            "paper-similarity",
            GmlTask::EntitySimilarity { target_type: v::PUBLICATION.into() },
        );
        req.cfg = GnnConfig { epochs: 5, ..GnnConfig::fast_test() };
        let out = mgr.train(&st, &req).unwrap();
        match &out.artifact.payload {
            ArtifactPayload::NodeSimilarity { store } => {
                assert!(!store.is_empty());
                let key = v::paper(0);
                let q = store.get(&key).unwrap().to_vec();
                let hits = store.search(&q, 3, 4);
                assert_eq!(hits[0].0, key);
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn impossible_budget_is_an_error() {
        let st = tiny_store();
        let mgr = TrainingManager::default();
        let mut req = TrainRequest::new("impossible", nc_task());
        req.budget = TaskBudget::with_memory(1);
        match mgr.train(&st, &req) {
            Err(e) => assert_eq!(e, TrainError::BudgetInfeasible),
            Ok(_) => panic!("expected budget error"),
        }
    }

    #[test]
    fn failed_training_leaves_model_store_unchanged() {
        // Insert-on-success: a request that fails anywhere in the pipeline
        // must leave the registry exactly as it was, even when the store
        // already holds models.
        let st = tiny_store();
        let mgr = TrainingManager::default();
        let mut ok = TrainRequest::new("good", nc_task());
        ok.cfg = GnnConfig::fast_test();
        mgr.train(&st, &ok).unwrap();
        let uris_before = mgr.model_store().uris();

        let mut bad = TrainRequest::new("starved", nc_task());
        bad.budget = TaskBudget::with_memory(1);
        match mgr.train(&st, &bad) {
            Err(e) => assert_eq!(e, TrainError::BudgetInfeasible),
            Ok(_) => panic!("expected budget error"),
        }
        let empty = TrainRequest::new(
            "empty",
            GmlTask::NodeClassification(NcTask {
                target_type: "http://nope/T".into(),
                label_predicate: "http://nope/p".into(),
            }),
        );
        assert!(mgr.train(&st, &empty).is_err());
        assert_eq!(mgr.model_store().uris(), uris_before);
    }

    #[test]
    fn cloned_managers_share_registry_and_never_collide_on_uris() {
        let st = tiny_store();
        let a = TrainingManager::default();
        let b = a.clone();
        let mut req = TrainRequest::new("shared", nc_task());
        req.cfg = GnnConfig::fast_test();
        let ua = a.train(&st, &req).unwrap().artifact.uri.clone();
        let ub = b.train(&st, &req).unwrap().artifact.uri.clone();
        assert_ne!(ua, ub, "shared counter must keep minted URIs distinct");
        assert_eq!(a.model_store().len(), 2);
        assert!(b.model_store().get(&ua).is_some());
    }

    #[test]
    fn empty_task_is_an_error() {
        let st = tiny_store();
        let mgr = TrainingManager::default();
        let req = TrainRequest::new(
            "nothing",
            GmlTask::NodeClassification(NcTask {
                target_type: "http://nope/T".into(),
                label_predicate: "http://nope/p".into(),
            }),
        );
        match mgr.train(&st, &req) {
            Err(e) => assert_eq!(e, TrainError::EmptyTask),
            Ok(_) => panic!("expected empty-task error"),
        }
    }
}
