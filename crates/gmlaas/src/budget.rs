//! Task budgets (the `Task Budget` JSON of Fig. 8).

use serde::{Deserialize, Serialize};

/// What the selector optimises among budget-feasible methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Priority {
    /// Maximise the expected model quality (the paper's `ModelScore`).
    #[default]
    ModelScore,
    /// Minimise estimated training time.
    TrainingTime,
    /// Minimise estimated training memory.
    Memory,
}

/// Resource envelope a training request must respect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TaskBudget {
    /// Peak-memory cap in bytes (`MaxMemory`).
    pub max_memory_bytes: Option<usize>,
    /// Training-time cap in seconds (`MaxTime`).
    pub max_time_s: Option<f64>,
    /// Selection priority.
    pub priority: Priority,
}

impl TaskBudget {
    /// Unconstrained budget with the default priority.
    pub fn unlimited() -> Self {
        TaskBudget::default()
    }

    /// Budget capped by memory only.
    pub fn with_memory(bytes: usize) -> Self {
        TaskBudget { max_memory_bytes: Some(bytes), ..Default::default() }
    }

    /// Budget capped by time only.
    pub fn with_time(seconds: f64) -> Self {
        TaskBudget { max_time_s: Some(seconds), ..Default::default() }
    }

    /// Parse the human-readable forms used in SPARQL-ML JSON:
    /// `"50GB"`, `"512MB"`, `"100000"` (bytes).
    pub fn parse_memory(text: &str) -> Option<usize> {
        let t = text.trim().to_ascii_uppercase();
        let (num, mult) = if let Some(stripped) = t.strip_suffix("GB") {
            (stripped, 1024usize * 1024 * 1024)
        } else if let Some(stripped) = t.strip_suffix("MB") {
            (stripped, 1024 * 1024)
        } else if let Some(stripped) = t.strip_suffix("KB") {
            (stripped, 1024)
        } else if let Some(stripped) = t.strip_suffix('B') {
            (stripped, 1)
        } else {
            (t.as_str(), 1)
        };
        let value: f64 = num.trim().parse().ok()?;
        Some((value * mult as f64) as usize)
    }

    /// Parse `"1h"`, `"30m"`, `"45s"` or plain seconds.
    pub fn parse_time(text: &str) -> Option<f64> {
        let t = text.trim().to_ascii_lowercase();
        let (num, mult) = if let Some(stripped) = t.strip_suffix('h') {
            (stripped, 3600.0)
        } else if let Some(stripped) = t.strip_suffix('m') {
            (stripped, 60.0)
        } else if let Some(stripped) = t.strip_suffix('s') {
            (stripped, 1.0)
        } else {
            (t.as_str(), 1.0)
        };
        let value: f64 = num.trim().parse().ok()?;
        Some(value * mult)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_memory_units() {
        assert_eq!(TaskBudget::parse_memory("50GB"), Some(50 * 1024 * 1024 * 1024));
        assert_eq!(TaskBudget::parse_memory("512MB"), Some(512 * 1024 * 1024));
        assert_eq!(TaskBudget::parse_memory("1024"), Some(1024));
        assert_eq!(TaskBudget::parse_memory("2kb"), Some(2048));
        assert_eq!(TaskBudget::parse_memory("junk"), None);
    }

    #[test]
    fn parse_time_units() {
        assert_eq!(TaskBudget::parse_time("1h"), Some(3600.0));
        assert_eq!(TaskBudget::parse_time("30m"), Some(1800.0));
        assert_eq!(TaskBudget::parse_time("45s"), Some(45.0));
        assert_eq!(TaskBudget::parse_time("12"), Some(12.0));
    }

    #[test]
    fn default_is_unconstrained_model_score() {
        let b = TaskBudget::unlimited();
        assert!(b.max_memory_bytes.is_none());
        assert!(b.max_time_s.is_none());
        assert_eq!(b.priority, Priority::ModelScore);
    }
}
