//! The GML Inference Manager's service boundary.
//!
//! In the paper, the RDF engine's UDFs reach trained models through HTTP
//! calls into GMLaaS, and the number of such calls is exactly what the
//! SPARQL-ML query optimizer minimises (Figs. 11/12). This module keeps that
//! boundary honest in-process: every request/response is serialised through
//! JSON, and the service counts calls and payload bytes so the optimizer's
//! objective is observable.

use kgnet_sync::atomic::{AtomicUsize, Ordering};
use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::model_store::{ArtifactPayload, ModelStore};

/// A request to the inference service (one "HTTP call").
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "op")]
pub enum InferenceRequest {
    /// Fig. 11 per-instance call: class of one node.
    GetNodeClass {
        /// Model URI.
        model: String,
        /// Target node IRI.
        node: String,
    },
    /// Fig. 12 single call: the full prediction dictionary.
    GetNodeClassDict {
        /// Model URI.
        model: String,
    },
    /// Top-k predicted links for one source node.
    GetTopkLinks {
        /// Model URI.
        model: String,
        /// Source node IRI.
        source: String,
        /// Links requested.
        k: usize,
    },
    /// All sources' top-k predicted links in one call.
    GetAllTopkLinks {
        /// Model URI.
        model: String,
        /// Links per source.
        k: usize,
    },
    /// k nearest entities in embedding space.
    GetSimilarNodes {
        /// Model URI.
        model: String,
        /// Query node IRI.
        node: String,
        /// Neighbours requested.
        k: usize,
    },
}

/// A JSON response from the inference service.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind")]
pub enum InferenceResponse {
    /// Class of a single node (absent when the model cannot infer it).
    NodeClass {
        /// Echoed node IRI.
        node: String,
        /// Predicted class IRI.
        class: Option<String>,
    },
    /// Full prediction dictionary.
    NodeClassDict {
        /// target IRI -> class IRI.
        predictions: HashMap<String, String>,
    },
    /// Ranked links for one source.
    TopkLinks {
        /// Echoed source IRI.
        source: String,
        /// `(destination, score)` best first.
        links: Vec<(String, f32)>,
    },
    /// Ranked links for all sources.
    AllTopkLinks {
        /// source IRI -> `(destination, score)` lists.
        links: HashMap<String, Vec<(String, f32)>>,
    },
    /// Embedding-space neighbours.
    SimilarNodes {
        /// `(entity, similarity)` best first.
        neighbors: Vec<(String, f32)>,
    },
}

/// Service-level errors (serialised like HTTP error responses).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceError {
    /// Unknown model URI.
    ModelNotFound(String),
    /// Request not applicable to the model's task kind.
    WrongTask(String),
    /// Serialisation failure (malformed payload).
    Codec(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::ModelNotFound(uri) => write!(f, "model not found: {uri}"),
            ServiceError::WrongTask(msg) => write!(f, "wrong task: {msg}"),
            ServiceError::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Call/byte counters of the service boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Number of calls served.
    pub calls: usize,
    /// Request bytes received (JSON).
    pub bytes_in: usize,
    /// Response bytes sent (JSON).
    pub bytes_out: usize,
}

/// The inference service.
#[derive(Clone, Default)]
pub struct InferenceService {
    models: ModelStore,
    calls: Arc<AtomicUsize>,
    bytes_in: Arc<AtomicUsize>,
    bytes_out: Arc<AtomicUsize>,
}

impl InferenceService {
    /// Service over a model store.
    pub fn new(models: ModelStore) -> Self {
        InferenceService {
            models,
            calls: Arc::new(AtomicUsize::new(0)),
            bytes_in: Arc::new(AtomicUsize::new(0)),
            bytes_out: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// The backing model store.
    pub fn models(&self) -> &ModelStore {
        &self.models
    }

    /// Current counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            calls: self.calls.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }

    /// Reset counters (e.g. between benchmarked queries).
    pub fn reset_stats(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.bytes_in.store(0, Ordering::Relaxed);
        self.bytes_out.store(0, Ordering::Relaxed);
    }

    /// Perform one call across the JSON boundary.
    pub fn call(&self, request: &InferenceRequest) -> Result<InferenceResponse, ServiceError> {
        // Serialise the request exactly as an HTTP client would.
        let wire_req =
            serde_json::to_string(request).map_err(|e| ServiceError::Codec(e.to_string()))?;
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(wire_req.len(), Ordering::Relaxed);
        let parsed: InferenceRequest =
            serde_json::from_str(&wire_req).map_err(|e| ServiceError::Codec(e.to_string()))?;

        let response = self.handle(&parsed)?;

        let wire_resp =
            serde_json::to_string(&response).map_err(|e| ServiceError::Codec(e.to_string()))?;
        self.bytes_out.fetch_add(wire_resp.len(), Ordering::Relaxed);
        serde_json::from_str(&wire_resp).map_err(|e| ServiceError::Codec(e.to_string()))
    }

    fn handle(&self, request: &InferenceRequest) -> Result<InferenceResponse, ServiceError> {
        match request {
            InferenceRequest::GetNodeClass { model, node } => {
                let artifact = self.lookup(model)?;
                match &artifact.payload {
                    ArtifactPayload::NodeClassifier { predictions } => {
                        Ok(InferenceResponse::NodeClass {
                            node: node.clone(),
                            class: predictions.get(node).cloned(),
                        })
                    }
                    _ => Err(ServiceError::WrongTask(format!("{model} is not a node classifier"))),
                }
            }
            InferenceRequest::GetNodeClassDict { model } => {
                let artifact = self.lookup(model)?;
                match &artifact.payload {
                    ArtifactPayload::NodeClassifier { predictions } => {
                        Ok(InferenceResponse::NodeClassDict { predictions: predictions.clone() })
                    }
                    _ => Err(ServiceError::WrongTask(format!("{model} is not a node classifier"))),
                }
            }
            InferenceRequest::GetTopkLinks { model, source, k } => {
                let artifact = self.lookup(model)?;
                match &artifact.payload {
                    ArtifactPayload::LinkPredictor { topk } => Ok(InferenceResponse::TopkLinks {
                        source: source.clone(),
                        links: topk
                            .get(source)
                            .map(|l| l.iter().take(*k).cloned().collect())
                            .unwrap_or_default(),
                    }),
                    _ => Err(ServiceError::WrongTask(format!("{model} is not a link predictor"))),
                }
            }
            InferenceRequest::GetAllTopkLinks { model, k } => {
                let artifact = self.lookup(model)?;
                match &artifact.payload {
                    ArtifactPayload::LinkPredictor { topk } => {
                        let links = topk
                            .iter()
                            .map(|(s, l)| (s.clone(), l.iter().take(*k).cloned().collect()))
                            .collect();
                        Ok(InferenceResponse::AllTopkLinks { links })
                    }
                    _ => Err(ServiceError::WrongTask(format!("{model} is not a link predictor"))),
                }
            }
            InferenceRequest::GetSimilarNodes { model, node, k } => {
                let artifact = self.lookup(model)?;
                match &artifact.payload {
                    ArtifactPayload::NodeSimilarity { store } => {
                        let Some(query) = store.get(node) else {
                            return Ok(InferenceResponse::SimilarNodes { neighbors: vec![] });
                        };
                        let q = query.to_vec();
                        Ok(InferenceResponse::SimilarNodes { neighbors: store.search(&q, *k, 4) })
                    }
                    _ => Err(ServiceError::WrongTask(format!("{model} is not a similarity model"))),
                }
            }
        }
    }

    fn lookup(&self, uri: &str) -> Result<Arc<crate::model_store::ModelArtifact>, ServiceError> {
        self.models.get(uri).ok_or_else(|| ServiceError::ModelNotFound(uri.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_store::{ModelArtifact, TaskKind};
    use kgnet_gml::config::{GmlMethodKind, TrainReport};

    fn report() -> TrainReport {
        TrainReport {
            method: GmlMethodKind::Gcn,
            train_time_s: 0.0,
            peak_mem_bytes: 0,
            test_metric: 0.9,
            valid_metric: 0.9,
            mrr: 0.0,
            loss_curve: vec![],
            n_nodes: 0,
            n_edges: 0,
            inference_time_ms: 0.1,
        }
    }

    fn service_with_nc() -> (InferenceService, String) {
        let store = ModelStore::new();
        let uri = "https://www.kgnet.com/model/nc/test-1".to_owned();
        store.insert(ModelArtifact {
            uri: uri.clone(),
            task_kind: TaskKind::NodeClassifier,
            target_type: "http://x/Paper".into(),
            label_predicate: "http://x/venue".into(),
            destination_type: None,
            method: GmlMethodKind::Gcn,
            report: report(),
            sampler: "d1h1".into(),
            cardinality: 2,
            trained_generation: 0,
            payload: ArtifactPayload::NodeClassifier {
                predictions: [
                    ("http://x/p1".to_owned(), "http://x/v1".to_owned()),
                    ("http://x/p2".to_owned(), "http://x/v2".to_owned()),
                ]
                .into_iter()
                .collect(),
            },
        });
        (InferenceService::new(store), uri)
    }

    #[test]
    fn node_class_lookup_counts_calls() {
        let (svc, uri) = service_with_nc();
        let resp = svc
            .call(&InferenceRequest::GetNodeClass {
                model: uri.clone(),
                node: "http://x/p1".into(),
            })
            .unwrap();
        assert_eq!(
            resp,
            InferenceResponse::NodeClass {
                node: "http://x/p1".into(),
                class: Some("http://x/v1".into())
            }
        );
        let stats = svc.stats();
        assert_eq!(stats.calls, 1);
        assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    }

    #[test]
    fn dictionary_call_is_one_call_many_bytes() {
        let (svc, uri) = service_with_nc();
        svc.reset_stats();
        let resp = svc.call(&InferenceRequest::GetNodeClassDict { model: uri }).unwrap();
        match resp {
            InferenceResponse::NodeClassDict { predictions } => assert_eq!(predictions.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(svc.stats().calls, 1);
    }

    #[test]
    fn unknown_model_and_wrong_task_errors() {
        let (svc, uri) = service_with_nc();
        let err = svc
            .call(&InferenceRequest::GetNodeClass { model: "http://nope".into(), node: "n".into() })
            .unwrap_err();
        assert!(matches!(err, ServiceError::ModelNotFound(_)));
        let err = svc
            .call(&InferenceRequest::GetTopkLinks { model: uri, source: "s".into(), k: 3 })
            .unwrap_err();
        assert!(matches!(err, ServiceError::WrongTask(_)));
    }

    #[test]
    fn unknown_node_returns_none_class() {
        let (svc, uri) = service_with_nc();
        let resp = svc
            .call(&InferenceRequest::GetNodeClass { model: uri, node: "http://x/unknown".into() })
            .unwrap();
        assert_eq!(
            resp,
            InferenceResponse::NodeClass { node: "http://x/unknown".into(), class: None }
        );
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let (svc, uri) = service_with_nc();
        let _ = svc.call(&InferenceRequest::GetNodeClassDict { model: uri });
        svc.reset_stats();
        assert_eq!(svc.stats(), ServiceStats::default());
    }
}
