//! # kgnet-gmlaas
//!
//! GML-as-a-service (the paper's Fig. 3/6 right half): the automated
//! training manager with budget-constrained method selection (an exact 0/1
//! integer program over per-method cost estimates), the model registry, the
//! FAISS-style embedding store for entity-similarity search, and the
//! JSON inference-service boundary whose call counter the SPARQL-ML
//! optimizer minimises.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod embedding_store;
pub mod ip;
pub mod model_store;
pub mod selector;
pub mod service;
pub mod training;

pub use budget::{Priority, TaskBudget};
pub use embedding_store::{AnnError, EmbeddingStore, HnswConfig, Metric, PqConfig, SearchParams};
pub use ip::{solve, IntegerProgram, IpSolution};
pub use model_store::{ArtifactPayload, LoadReport, ModelArtifact, ModelStore, TaskKind};
pub use selector::{select_method, Candidate, SelectionTrace};
pub use service::{
    InferenceRequest, InferenceResponse, InferenceService, ServiceError, ServiceStats,
};
pub use training::{TrainError, TrainOutcome, TrainRequest, TrainingManager};
