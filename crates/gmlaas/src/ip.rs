//! A small exact 0/1 integer-program solver (branch and bound).
//!
//! The paper formulates two optimizer decisions as integer programs: GML
//! method/model selection under budget constraints (§IV.A, §IV.B.3) and
//! rewrite-plan selection minimising HTTP calls (§IV.B.3). Both instances
//! are tiny (one binary per candidate), so an exact branch-and-bound with an
//! optimistic objective bound solves them instantly and reproducibly.

/// `maximize c·x  s.t.  A x <= b,  E x == f,  x ∈ {0,1}^n`.
#[derive(Debug, Clone, Default)]
pub struct IntegerProgram {
    /// Objective coefficients (maximised).
    pub objective: Vec<f64>,
    /// `<=` constraints as `(row, bound)`.
    pub le_constraints: Vec<(Vec<f64>, f64)>,
    /// `==` constraints as `(row, bound)`.
    pub eq_constraints: Vec<(Vec<f64>, f64)>,
}

impl IntegerProgram {
    /// New program over `n` binary variables with zero objective.
    pub fn new(n: usize) -> Self {
        IntegerProgram { objective: vec![0.0; n], ..Default::default() }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.objective.len()
    }

    /// Add a `row · x <= bound` constraint.
    pub fn add_le(&mut self, row: Vec<f64>, bound: f64) {
        assert_eq!(row.len(), self.n_vars(), "constraint width mismatch");
        self.le_constraints.push((row, bound));
    }

    /// Add a `row · x == bound` constraint.
    pub fn add_eq(&mut self, row: Vec<f64>, bound: f64) {
        assert_eq!(row.len(), self.n_vars(), "constraint width mismatch");
        self.eq_constraints.push((row, bound));
    }

    fn feasible(&self, x: &[bool]) -> bool {
        let dot = |row: &[f64]| -> f64 {
            row.iter().zip(x).map(|(&a, &xi)| if xi { a } else { 0.0 }).sum()
        };
        self.le_constraints.iter().all(|(row, b)| dot(row) <= b + 1e-9)
            && self.eq_constraints.iter().all(|(row, b)| (dot(row) - b).abs() <= 1e-9)
    }

    fn objective_value(&self, x: &[bool]) -> f64 {
        self.objective.iter().zip(x).map(|(&c, &xi)| if xi { c } else { 0.0 }).sum()
    }
}

/// Solution of an [`IntegerProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct IpSolution {
    /// Chosen assignment.
    pub assignment: Vec<bool>,
    /// Objective value.
    pub objective: f64,
}

/// Solve exactly; `None` when infeasible.
pub fn solve(ip: &IntegerProgram) -> Option<IpSolution> {
    let n = ip.n_vars();
    // Order variables by decreasing |objective| so good solutions are found
    // early and the optimistic bound prunes hard.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        ip.objective[b]
            .abs()
            .partial_cmp(&ip.objective[a].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Suffix sums of positive objective mass = admissible upper bound.
    let mut pos_suffix = vec![0.0f64; n + 1];
    for i in (0..n).rev() {
        pos_suffix[i] = pos_suffix[i + 1] + ip.objective[order[i]].max(0.0);
    }

    struct Search<'a> {
        ip: &'a IntegerProgram,
        order: &'a [usize],
        pos_suffix: &'a [f64],
        best: Option<IpSolution>,
        x: Vec<bool>,
    }

    impl Search<'_> {
        fn run(&mut self, depth: usize, value: f64) {
            if let Some(best) = &self.best {
                if value + self.pos_suffix[depth] <= best.objective + 1e-12 {
                    return; // cannot beat the incumbent
                }
            }
            if depth == self.order.len() {
                if self.ip.feasible(&self.x) {
                    let objective = self.ip.objective_value(&self.x);
                    if self.best.as_ref().is_none_or(|b| objective > b.objective) {
                        self.best = Some(IpSolution { assignment: self.x.clone(), objective });
                    }
                }
                return;
            }
            let var = self.order[depth];
            for &choice in &[true, false] {
                self.x[var] = choice;
                // Partial pruning: minimum achievable lhs must not already
                // exceed a <= bound (all coefficients assumed finite).
                if self.partially_feasible(depth + 1) {
                    let dv = if choice { self.ip.objective[var] } else { 0.0 };
                    self.run(depth + 1, value + dv);
                }
            }
            self.x[var] = false;
        }

        /// Check `<=` constraints assuming every undecided variable takes
        /// the value minimising the row (0 for positive coefficients,
        /// 1 for negative).
        fn partially_feasible(&self, decided: usize) -> bool {
            let decided_set: Vec<usize> = self.order[..decided].to_vec();
            'rows: for (row, b) in &self.ip.le_constraints {
                let mut lhs = 0.0;
                for &v in &decided_set {
                    if self.x[v] {
                        lhs += row[v];
                    }
                }
                for &v in &self.order[decided..] {
                    if row[v] < 0.0 {
                        lhs += row[v];
                    }
                }
                if lhs > b + 1e-9 {
                    return false;
                }
                continue 'rows;
            }
            true
        }
    }

    let mut search =
        Search { ip, order: &order, pos_suffix: &pos_suffix, best: None, x: vec![false; n] };
    search.run(0, 0.0);
    search.best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_takes_positive_coefficients() {
        let mut ip = IntegerProgram::new(3);
        ip.objective = vec![2.0, -1.0, 3.0];
        let sol = solve(&ip).unwrap();
        assert_eq!(sol.assignment, vec![true, false, true]);
        assert_eq!(sol.objective, 5.0);
    }

    #[test]
    fn knapsack() {
        // values 6,10,12; weights 1,2,3; cap 5 -> pick items 1,2 (22).
        let mut ip = IntegerProgram::new(3);
        ip.objective = vec![6.0, 10.0, 12.0];
        ip.add_le(vec![1.0, 2.0, 3.0], 5.0);
        let sol = solve(&ip).unwrap();
        assert_eq!(sol.assignment, vec![false, true, true]);
        assert_eq!(sol.objective, 22.0);
    }

    #[test]
    fn pick_exactly_one() {
        let mut ip = IntegerProgram::new(4);
        ip.objective = vec![0.7, 0.9, 0.8, 0.2];
        ip.add_eq(vec![1.0; 4], 1.0);
        // The best one violates a side constraint.
        ip.add_le(vec![0.0, 1.0, 0.0, 0.0], 0.0);
        let sol = solve(&ip).unwrap();
        assert_eq!(sol.assignment, vec![false, false, true, false]);
    }

    #[test]
    fn infeasible_returns_none() {
        let mut ip = IntegerProgram::new(2);
        ip.objective = vec![1.0, 1.0];
        ip.add_eq(vec![1.0, 1.0], 1.0);
        ip.add_le(vec![1.0, 0.0], -1.0);
        ip.add_le(vec![0.0, 1.0], -1.0);
        assert!(solve(&ip).is_none());
    }

    #[test]
    fn negative_coefficients_in_constraints() {
        // Choosing x1 relaxes the constraint on x0.
        let mut ip = IntegerProgram::new(2);
        ip.objective = vec![5.0, 1.0];
        ip.add_le(vec![3.0, -2.0], 1.0);
        let sol = solve(&ip).unwrap();
        assert_eq!(sol.assignment, vec![true, true]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn brute_force(ip: &IntegerProgram) -> Option<f64> {
        let n = ip.n_vars();
        let mut best: Option<f64> = None;
        for mask in 0u32..(1 << n) {
            let x: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            if ip.feasible(&x) {
                let v = ip.objective_value(&x);
                if best.is_none_or(|b| v > b) {
                    best = Some(v);
                }
            }
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Branch and bound matches brute force on random small programs.
        #[test]
        fn matches_brute_force(
            n in 1usize..9,
            coef_seed in proptest::collection::vec(-10i32..10, 9),
            rows in proptest::collection::vec((proptest::collection::vec(-5i32..6, 9), -4i32..15), 0..4),
            eq_sum in proptest::option::of(1usize..4),
        ) {
            let mut ip = IntegerProgram::new(n);
            ip.objective = coef_seed[..n].iter().map(|&c| c as f64).collect();
            for (row, b) in &rows {
                ip.add_le(row[..n].iter().map(|&v| v as f64).collect(), *b as f64);
            }
            if let Some(k) = eq_sum {
                if k <= n {
                    ip.add_eq(vec![1.0; n], k as f64);
                }
            }
            let bb = solve(&ip).map(|s| s.objective);
            let bf = brute_force(&ip);
            match (bb, bf) {
                (None, None) => {}
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "bb {a} vs bf {b}"),
                other => prop_assert!(false, "feasibility mismatch: {other:?}"),
            }
        }
    }
}
