//! The embedding store (the paper's FAISS substitute): exact and IVF
//! (inverted-file) top-k similarity search over entity embeddings, powering
//! the entity-similarity (ES) task of Table I.
//!
//! Candidate scoring — the probed IVF posting lists, and the linear scan of
//! the exact path — runs data-parallel on the work-stealing pool once the
//! candidate count crosses [`PAR_MIN_CANDIDATES`]; scored candidates keep
//! their sequential order (cells in probe order, vectors in list order), so
//! parallel and sequential searches return identical rankings.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Candidate count below which search scoring stays sequential (scoring a
/// handful of vectors is cheaper than fork/join scheduling).
const PAR_MIN_CANDIDATES: usize = 2048;

/// Similarity metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Negative Euclidean distance (larger = closer).
    L2,
    /// Cosine similarity.
    Cosine,
    /// Inner product.
    Dot,
}

impl Metric {
    fn score(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::L2 => {
                let d: f32 = a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum();
                -d.max(0.0).sqrt()
            }
            Metric::Dot => a.iter().zip(b).map(|(&x, &y)| x * y).sum(),
            Metric::Cosine => {
                let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
                let na: f32 = a.iter().map(|&x| x * x).sum::<f32>().sqrt();
                let nb: f32 = b.iter().map(|&y| y * y).sum::<f32>().sqrt();
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    dot / (na * nb)
                }
            }
        }
    }
}

/// An inverted-file coarse index (k-means cells + posting lists).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct IvfIndex {
    centroids: Vec<Vec<f32>>,
    lists: Vec<Vec<u32>>,
}

/// A keyed vector store with exact and approximate search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbeddingStore {
    dim: usize,
    metric: Metric,
    keys: Vec<String>,
    vectors: Vec<Vec<f32>>,
    ivf: Option<IvfIndex>,
}

impl EmbeddingStore {
    /// New empty store for vectors of width `dim`.
    pub fn new(dim: usize, metric: Metric) -> Self {
        EmbeddingStore { dim, metric, keys: Vec::new(), vectors: Vec::new(), ivf: None }
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Add one keyed vector. Invalidates any built IVF index.
    pub fn add(&mut self, key: impl Into<String>, vector: Vec<f32>) {
        assert_eq!(vector.len(), self.dim, "vector width mismatch");
        self.keys.push(key.into());
        self.vectors.push(vector);
        self.ivf = None;
    }

    /// Fetch a vector by key.
    pub fn get(&self, key: &str) -> Option<&[f32]> {
        self.keys.iter().position(|k| k == key).map(|i| self.vectors[i].as_slice())
    }

    /// Exact top-k search (linear scan, parallel over the vector table once
    /// it is large enough).
    pub fn search_exact(&self, query: &[f32], k: usize) -> Vec<(String, f32)> {
        assert_eq!(query.len(), self.dim, "query width mismatch");
        // One scoring closure shared by both branches, so the parallel and
        // sequential paths cannot drift apart.
        let score_one = |(i, v): (usize, &Vec<f32>)| (i, self.metric.score(query, v));
        let mut scored: Vec<(usize, f32)> = if self.vectors.len() >= PAR_MIN_CANDIDATES {
            self.vectors.par_iter().enumerate().map(score_one).collect()
        } else {
            self.vectors.iter().enumerate().map(score_one).collect()
        };
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.into_iter().take(k).map(|(i, s)| (self.keys[i].clone(), s)).collect()
    }

    /// Build an IVF index with `n_cells` k-means cells (a few Lloyd
    /// iterations, like FAISS's coarse quantiser training).
    ///
    /// The dominant O(n·cells·dim) phase — nearest-centroid assignment —
    /// runs data-parallel on the work-stealing pool once the store is large
    /// enough, as a pure per-vector map with an order-preserving collect.
    /// The O(n·dim) centroid accumulation stays a single sequential fold in
    /// vector index order (one `cells × dim` buffer, no per-chunk
    /// partials), so the index is bit-identical to the sequential build on
    /// any `RAYON_NUM_THREADS`.
    pub fn build_ivf(&mut self, n_cells: usize, iterations: usize, seed: u64) {
        let n = self.len();
        if n == 0 {
            return;
        }
        let n_cells = n_cells.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut centroids: Vec<Vec<f32>> =
            order[..n_cells].iter().map(|&i| self.vectors[i].clone()).collect();

        let mut assign = vec![0usize; n];
        for _ in 0..iterations.max(1) {
            self.assign_cells(&centroids, &mut assign);
            let mut sums = vec![vec![0.0f32; self.dim]; n_cells];
            let mut counts = vec![0usize; n_cells];
            for (&cell, v) in assign.iter().zip(&self.vectors) {
                counts[cell] += 1;
                for (s, &x) in sums[cell].iter_mut().zip(v) {
                    *s += x;
                }
            }
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count > 0 {
                    *c = sum.iter().map(|&s| s / count as f32).collect();
                }
            }
        }
        self.assign_cells(&centroids, &mut assign);
        let mut lists = vec![Vec::new(); n_cells];
        for (i, &cell) in assign.iter().enumerate() {
            lists[cell].push(i as u32);
        }
        self.ivf = Some(IvfIndex { centroids, lists });
    }

    /// Nearest-centroid assignment for every stored vector: a pure map, run
    /// on the pool above the parallel cutoff with an order-preserving
    /// collect, so the result is identical to the sequential loop.
    fn assign_cells(&self, centroids: &[Vec<f32>], assign: &mut [usize]) {
        if self.vectors.len() >= PAR_MIN_CANDIDATES {
            let cells: Vec<usize> =
                self.vectors.par_iter().map(|v| nearest_centroid(centroids, v)).collect();
            assign.copy_from_slice(&cells);
        } else {
            for (a, v) in assign.iter_mut().zip(&self.vectors) {
                *a = nearest_centroid(centroids, v);
            }
        }
    }

    /// Approximate top-k search probing the `nprobe` nearest cells. Falls
    /// back to exact search when no index is built.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<(String, f32)> {
        let Some(ivf) = &self.ivf else {
            return self.search_exact(query, k);
        };
        let mut cells: Vec<(usize, f32)> = ivf
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let d: f32 = query.iter().zip(c).map(|(&x, &y)| (x - y) * (x - y)).sum();
                (i, d)
            })
            .collect();
        cells.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        // Probe-list scanning: score each probed cell's posting list; large
        // probe sets fan the per-list scans out over the pool. Collect is
        // order-preserving (cells in probe order, entries in list order), so
        // both paths produce the same candidate sequence and ranking.
        let probed: Vec<&Vec<u32>> =
            cells.iter().take(nprobe.max(1)).map(|&(cell, _)| &ivf.lists[cell]).collect();
        let total: usize = probed.iter().map(|l| l.len()).sum();
        let score_list = |list: &&Vec<u32>| -> Vec<(u32, f32)> {
            list.iter().map(|&i| (i, self.metric.score(query, &self.vectors[i as usize]))).collect()
        };
        let per_cell: Vec<Vec<(u32, f32)>> = if total >= PAR_MIN_CANDIDATES {
            probed.par_iter().map(score_list).collect()
        } else {
            probed.iter().map(score_list).collect()
        };
        let mut scored: Vec<(u32, f32)> = per_cell.into_iter().flatten().collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.into_iter().take(k).map(|(i, s)| (self.keys[i as usize].clone(), s)).collect()
    }
}

fn nearest_centroid(centroids: &[Vec<f32>], v: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d: f32 = v.iter().zip(c).map(|(&x, &y)| (x - y) * (x - y)).sum();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn filled_store(n: usize, dim: usize, seed: u64) -> EmbeddingStore {
        let mut store = EmbeddingStore::new(dim, Metric::L2);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            store.add(format!("e{i}"), v);
        }
        store
    }

    #[test]
    fn exact_search_returns_self_first() {
        let store = filled_store(50, 8, 1);
        let q = store.get("e7").unwrap().to_vec();
        let hits = store.search_exact(&q, 3);
        assert_eq!(hits[0].0, "e7");
        assert!(hits[0].1 >= hits[1].1);
    }

    #[test]
    fn cosine_and_dot_metrics() {
        let mut store = EmbeddingStore::new(2, Metric::Cosine);
        store.add("x", vec![1.0, 0.0]);
        store.add("y", vec![0.0, 1.0]);
        let hits = store.search_exact(&[2.0, 0.1], 2);
        assert_eq!(hits[0].0, "x");
        assert!((hits[0].1 - 1.0).abs() < 0.01);

        let mut store = EmbeddingStore::new(2, Metric::Dot);
        store.add("x", vec![1.0, 0.0]);
        store.add("y", vec![3.0, 0.0]);
        let hits = store.search_exact(&[1.0, 0.0], 2);
        assert_eq!(hits[0].0, "y");
    }

    #[test]
    fn ivf_recall_at_10_is_high() {
        let mut store = filled_store(400, 16, 2);
        store.build_ivf(16, 5, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut recall_hits = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let q: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let exact: Vec<String> =
                store.search_exact(&q, 10).into_iter().map(|(k, _)| k).collect();
            let approx: Vec<String> = store.search(&q, 10, 4).into_iter().map(|(k, _)| k).collect();
            total += exact.len();
            recall_hits += exact.iter().filter(|k| approx.contains(k)).count();
        }
        let recall = recall_hits as f64 / total as f64;
        assert!(recall > 0.6, "IVF recall too low: {recall}");
    }

    #[test]
    fn adding_invalidates_index() {
        let mut store = filled_store(20, 4, 5);
        store.build_ivf(4, 3, 1);
        store.add("new", vec![0.0; 4]);
        // Falls back to exact search and must find the new key.
        let hits = store.search(&[0.0; 4], 1, 2);
        assert_eq!(hits[0].0, "new");
    }

    #[test]
    fn parallel_search_matches_single_thread_above_cutoff() {
        // 3000 vectors with nprobe covering most cells pushes the candidate
        // count past PAR_MIN_CANDIDATES, so the parallel scoring path runs;
        // it must return exactly what a one-thread pool returns, for both
        // the IVF and the exact scan.
        let mut store = filled_store(3000, 8, 9);
        store.build_ivf(8, 3, 1);
        let q = store.get("e1234").unwrap().to_vec();
        let single = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let multi = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ivf_1 = single.install(|| store.search(&q, 25, 7));
        let ivf_4 = multi.install(|| store.search(&q, 25, 7));
        assert_eq!(ivf_1, ivf_4);
        assert_eq!(ivf_1[0].0, "e1234");
        let exact_1 = single.install(|| store.search_exact(&q, 25));
        let exact_4 = multi.install(|| store.search_exact(&q, 25));
        assert_eq!(exact_1, exact_4);
    }

    #[test]
    fn build_ivf_is_deterministic_across_pool_sizes() {
        // 3000 vectors crosses the parallel cutoff: cell assignment runs on
        // the pool, and must produce the same index (centroids bit-for-bit,
        // identical posting lists) as one thread.
        let single = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let multi = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut a = filled_store(3000, 8, 9);
        let mut b = filled_store(3000, 8, 9);
        single.install(|| a.build_ivf(32, 4, 7));
        multi.install(|| b.build_ivf(32, 4, 7));
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn serde_roundtrip() {
        let mut store = filled_store(10, 4, 6);
        store.build_ivf(2, 2, 1);
        let json = serde_json::to_string(&store).unwrap();
        let back: EmbeddingStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 10);
        let q = store.get("e3").unwrap().to_vec();
        assert_eq!(store.search(&q, 3, 2), back.search(&q, 3, 2));
    }
}
