//! The embedding store (the paper's FAISS substitute): keyed top-k
//! similarity search over entity embeddings, powering the
//! entity-similarity (ES) task of Table I.
//!
//! The store is a thin key-management layer over the `kgnet-ann`
//! subsystem: vectors live in a flat [`VectorTable`] (owned, or zero-copy
//! over a memory-mapped artifact after [`EmbeddingStore::load_binary`]),
//! and approximate search goes through any of the three [`AnnIndex`]
//! families — exact scan, IVF, HNSW or product quantization — built by
//! [`build_ivf`](EmbeddingStore::build_ivf),
//! [`build_hnsw`](EmbeddingStore::build_hnsw) and
//! [`build_pq`](EmbeddingStore::build_pq). All index construction is
//! deterministic-parallel on the work-stealing pool (bit-identical on any
//! `RAYON_NUM_THREADS`), and every search tie-breaks deterministically on
//! (score, then key), so results are stable across runs and pool sizes.

use std::path::Path;

use serde::{
    de::{Deserializer, Error as DeError},
    from_content, Content, Deserialize, Serialize,
};

pub use kgnet_ann::{AnnError, HnswConfig, Metric, PqConfig, SearchParams, SearchStats};

use kgnet_ann::{
    load_embedding_file, save_embedding_file, search_exact as ann_search_exact,
    search_exact_with_stats as ann_search_exact_with_stats, AnnIndex, AnyIndex, EmbeddingFileView,
    HnswIndex, IvfIndex, PqIndex, VectorTable, Vectors,
};

/// A keyed vector store with exact and approximate search.
#[derive(Debug, Clone, Serialize)]
pub struct EmbeddingStore {
    dim: usize,
    metric: Metric,
    keys: Vec<String>,
    vectors: VectorTable,
    index: Option<AnyIndex>,
}

// Deserialization is hand-written so the pre-`kgnet-ann` JSON layout —
// `vectors` as a bare row sequence and a flat-IVF `ivf` field instead of
// the tagged `index` — keeps loading: old `ModelStore` directories fall
// back to whole-artifact JSON, and that promise covers their wire shape.
impl<'de> Deserialize<'de> for EmbeddingStore {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let content = deserializer.deserialize_content()?;
        let field = |name: &str| {
            content
                .get(name)
                .cloned()
                .ok_or_else(|| D::Error::custom(format!("EmbeddingStore: missing `{name}`")))
        };
        let dim: usize = from_content(field("dim")?).map_err(D::Error::custom)?;
        let metric: Metric = from_content(field("metric")?).map_err(D::Error::custom)?;
        let keys: Vec<String> = from_content(field("keys")?).map_err(D::Error::custom)?;
        let vectors = match field("vectors")? {
            // Legacy layout: a plain sequence of rows (width from `dim`).
            Content::Seq(rows) => {
                let rows: Vec<Vec<f32>> =
                    from_content(Content::Seq(rows)).map_err(D::Error::custom)?;
                VectorTable::from_rows(dim, &rows).map_err(D::Error::custom)?
            }
            table => from_content::<VectorTable>(table).map_err(D::Error::custom)?,
        };
        let index = match content.get("index") {
            Some(Content::Null) | None => match content.get("ivf") {
                // Legacy layout: an untagged flat-IVF index.
                Some(ivf @ Content::Map(_)) => {
                    let centroids: Vec<Vec<f32>> =
                        from_content(field_of(ivf, "centroids").map_err(D::Error::custom)?)
                            .map_err(D::Error::custom)?;
                    let lists: Vec<Vec<u32>> =
                        from_content(field_of(ivf, "lists").map_err(D::Error::custom)?)
                            .map_err(D::Error::custom)?;
                    let ivf =
                        IvfIndex::from_parts(centroids, lists, keys.len()).ok_or_else(|| {
                            D::Error::custom("EmbeddingStore: legacy ivf index is inconsistent")
                        })?;
                    Some(AnyIndex::Ivf(ivf))
                }
                _ => None,
            },
            Some(index) => from_content(index.clone()).map_err(D::Error::custom)?,
        };
        if vectors.len() != keys.len() {
            return Err(D::Error::custom("EmbeddingStore: key/vector counts disagree"));
        }
        Ok(EmbeddingStore { dim, metric, keys, vectors, index })
    }
}

fn field_of(content: &Content, name: &str) -> Result<Content, String> {
    content.get(name).cloned().ok_or_else(|| format!("missing `{name}` in legacy ivf index"))
}

impl EmbeddingStore {
    /// New empty store for vectors of width `dim`.
    pub fn new(dim: usize, metric: Metric) -> Self {
        EmbeddingStore {
            dim,
            metric,
            keys: Vec::new(),
            vectors: VectorTable::new(dim),
            index: None,
        }
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The similarity metric searches rank by.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Family of the currently built index (`"ivf"`, `"hnsw"`, `"pq"`),
    /// or `None` when searches fall back to the exact scan.
    pub fn index_kind(&self) -> Option<&'static str> {
        self.index.as_ref().map(AnnIndex::kind)
    }

    /// Add one keyed vector. Rejects width mismatches (which would
    /// otherwise corrupt every later scan over the flat table) and leaves
    /// the store untouched on error. Invalidates any built index.
    pub fn add(&mut self, key: impl Into<String>, vector: Vec<f32>) -> Result<(), AnnError> {
        self.vectors.push(&vector)?;
        self.keys.push(key.into());
        self.index = None;
        Ok(())
    }

    /// Fetch a vector by key.
    pub fn get(&self, key: &str) -> Option<&[f32]> {
        self.keys.iter().position(|k| k == key).map(|i| self.vectors.vector(i as u32))
    }

    /// The stored keys, in insertion (vector id) order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.keys.iter().map(String::as_str)
    }

    /// Exact top-k search: a linear scan, parallel over the vector table
    /// once it is large enough, with deterministic (score, then key)
    /// tie-breaking.
    pub fn search_exact(&self, query: &[f32], k: usize) -> Vec<(String, f32)> {
        assert_eq!(query.len(), self.dim, "query width mismatch");
        self.to_keyed(ann_search_exact(&self.vectors, self.metric, query, k))
    }

    /// Build an IVF index with `n_cells` k-means cells (a few Lloyd
    /// iterations, like FAISS's coarse quantiser training). Bit-identical
    /// on any pool size.
    pub fn build_ivf(&mut self, n_cells: usize, iterations: usize, seed: u64) {
        if self.is_empty() {
            return;
        }
        self.index = Some(AnyIndex::Ivf(IvfIndex::build(&self.vectors, n_cells, iterations, seed)));
    }

    /// Build an HNSW graph index. Construction is wave-parallel on the
    /// work-stealing pool and bit-identical on any pool size; levels are
    /// assigned deterministically from the config seed.
    pub fn build_hnsw(&mut self, cfg: &HnswConfig) {
        if self.is_empty() {
            return;
        }
        self.index = Some(AnyIndex::Hnsw(HnswIndex::build(&self.vectors, self.metric, cfg)));
    }

    /// Train a product-quantization index (k-means sub-codebooks,
    /// asymmetric distance computation, refine-over-raw-vectors).
    /// Bit-identical on any pool size.
    pub fn build_pq(&mut self, cfg: &PqConfig) {
        if self.is_empty() {
            return;
        }
        self.index = Some(AnyIndex::Pq(PqIndex::build(&self.vectors, cfg)));
    }

    /// Approximate top-k search through the built index, probing `nprobe`
    /// cells when that index is IVF (other families use their build-time
    /// defaults — see [`EmbeddingStore::search_with`] for full control).
    /// Falls back to exact search when no index is built.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<(String, f32)> {
        self.search_with(query, k, &SearchParams::with_nprobe(nprobe))
    }

    /// Approximate top-k search with explicit per-query tunables.
    pub fn search_with(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Vec<(String, f32)> {
        assert_eq!(query.len(), self.dim, "query width mismatch");
        match &self.index {
            None => self.search_exact(query, k),
            Some(ix) => self.to_keyed(ix.search(&self.vectors, self.metric, query, k, params)),
        }
    }

    /// [`search_with`](EmbeddingStore::search_with) plus what the search
    /// cost — candidate counts and distance-computation tallies the
    /// serving layer folds into its metrics.
    pub fn search_with_stats(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> (Vec<(String, f32)>, SearchStats) {
        assert_eq!(query.len(), self.dim, "query width mismatch");
        let (hits, stats) = match &self.index {
            None => ann_search_exact_with_stats(&self.vectors, self.metric, query, k),
            Some(ix) => ix.search_with_stats(&self.vectors, self.metric, query, k, params),
        };
        (self.to_keyed(hits), stats)
    }

    /// Map id-level hits to keys, re-breaking ties on (score desc, key
    /// asc) so the public result order never depends on insertion order.
    fn to_keyed(&self, hits: Vec<(u32, f32)>) -> Vec<(String, f32)> {
        let mut out: Vec<(String, f32)> =
            hits.into_iter().map(|(i, s)| (self.keys[i as usize].clone(), s)).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Persist this store (keys, vectors and any built index) as one
    /// checksummed binary artifact — the paper-scale replacement for JSON
    /// round-trips.
    pub fn save_binary(&self, path: &Path) -> Result<(), AnnError> {
        save_embedding_file(
            path,
            EmbeddingFileView {
                dim: self.dim,
                metric: self.metric,
                keys: &self.keys,
                vectors: &self.vectors,
                index: self.index.as_ref(),
            },
        )
    }

    /// Load a store persisted by [`EmbeddingStore::save_binary`]. The
    /// vector matrix is served zero-copy from the memory-mapped file, and
    /// searches return exactly what the in-memory store returned before
    /// saving.
    pub fn load_binary(path: &Path) -> Result<EmbeddingStore, AnnError> {
        let c = load_embedding_file(path)?;
        Ok(EmbeddingStore {
            dim: c.dim,
            metric: c.metric,
            keys: c.keys,
            vectors: c.vectors,
            index: c.index,
        })
    }

    /// True when the vector table reads from a memory-mapped artifact
    /// rather than owned memory (diagnostics only).
    pub fn is_mapped(&self) -> bool {
        self.vectors.is_mapped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn filled_store(n: usize, dim: usize, seed: u64) -> EmbeddingStore {
        let mut store = EmbeddingStore::new(dim, Metric::L2);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            store.add(format!("e{i}"), v).unwrap();
        }
        store
    }

    fn recall(store: &EmbeddingStore, queries: usize, dim: usize, seed: u64, nprobe: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut hits, mut total) = (0usize, 0usize);
        for _ in 0..queries {
            let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let exact: Vec<String> =
                store.search_exact(&q, 10).into_iter().map(|(k, _)| k).collect();
            let approx: Vec<String> =
                store.search(&q, 10, nprobe).into_iter().map(|(k, _)| k).collect();
            total += exact.len();
            hits += exact.iter().filter(|k| approx.contains(k)).count();
        }
        hits as f64 / total as f64
    }

    #[test]
    fn search_with_stats_matches_plain_search_and_reports_cost() {
        let mut store = filled_store(300, 8, 17);
        let q = store.get("e42").unwrap().to_vec();
        // No index: the exact fallback scores every stored vector.
        let (hits, stats) = store.search_with_stats(&q, 5, &SearchParams::default());
        assert_eq!(hits, store.search_with(&q, 5, &SearchParams::default()));
        assert_eq!(stats.candidates, 300);
        assert_eq!(stats.distance_computations, 300);
        // IVF: fewer candidates than the table, coarse scan on top.
        store.build_ivf(10, 4, 9);
        let params = SearchParams::with_nprobe(2);
        let (hits, stats) = store.search_with_stats(&q, 5, &params);
        assert_eq!(hits, store.search_with(&q, 5, &params));
        assert!(stats.candidates > 0 && stats.candidates < 300);
        assert_eq!(stats.distance_computations, stats.candidates + 10);
    }

    #[test]
    fn exact_search_returns_self_first() {
        let store = filled_store(50, 8, 1);
        let q = store.get("e7").unwrap().to_vec();
        let hits = store.search_exact(&q, 3);
        assert_eq!(hits[0].0, "e7");
        assert!(hits[0].1 >= hits[1].1);
    }

    #[test]
    fn cosine_and_dot_metrics() {
        let mut store = EmbeddingStore::new(2, Metric::Cosine);
        store.add("x", vec![1.0, 0.0]).unwrap();
        store.add("y", vec![0.0, 1.0]).unwrap();
        let hits = store.search_exact(&[2.0, 0.1], 2);
        assert_eq!(hits[0].0, "x");
        assert!((hits[0].1 - 1.0).abs() < 0.01);

        let mut store = EmbeddingStore::new(2, Metric::Dot);
        store.add("x", vec![1.0, 0.0]).unwrap();
        store.add("y", vec![3.0, 0.0]).unwrap();
        let hits = store.search_exact(&[1.0, 0.0], 2);
        assert_eq!(hits[0].0, "y");
    }

    #[test]
    fn dimension_mismatch_is_rejected_without_corruption() {
        let mut store = filled_store(5, 4, 3);
        let err = store.add("bad", vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, AnnError::DimensionMismatch { expected: 4, got: 2 }));
        assert_eq!(store.len(), 5, "failed add must not grow the store");
        // Later scans stay healthy: every stored key still resolves.
        let q = store.get("e0").unwrap().to_vec();
        assert_eq!(store.search_exact(&q, 1)[0].0, "e0");
    }

    #[test]
    fn ties_break_on_key_order() {
        let mut store = EmbeddingStore::new(2, Metric::L2);
        // Insert in reverse-lexicographic order; scores tie exactly.
        store.add("zeta", vec![1.0, 0.0]).unwrap();
        store.add("beta", vec![1.0, 0.0]).unwrap();
        store.add("alpha", vec![1.0, 0.0]).unwrap();
        store.add("omega", vec![0.0, 9.0]).unwrap();
        let hits = store.search_exact(&[1.0, 0.0], 3);
        let keys: Vec<&str> = hits.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["alpha", "beta", "zeta"]);
    }

    #[test]
    fn ivf_recall_at_10_is_high() {
        let mut store = filled_store(400, 16, 2);
        store.build_ivf(16, 5, 3);
        assert_eq!(store.index_kind(), Some("ivf"));
        let r = recall(&store, 20, 16, 4, 4);
        assert!(r > 0.6, "IVF recall too low: {r}");
    }

    #[test]
    fn hnsw_recall_at_10_beats_point_nine() {
        let mut store = filled_store(1500, 16, 12);
        store.build_hnsw(&HnswConfig::default());
        assert_eq!(store.index_kind(), Some("hnsw"));
        let r = recall(&store, 20, 16, 13, 4);
        assert!(r >= 0.9, "HNSW recall too low: {r}");
    }

    #[test]
    fn pq_recall_at_10_beats_point_nine() {
        let mut store = filled_store(1500, 16, 14);
        store.build_pq(&PqConfig { ks: 64, ..Default::default() });
        assert_eq!(store.index_kind(), Some("pq"));
        let r = recall(&store, 20, 16, 15, 4);
        assert!(r >= 0.9, "PQ recall too low: {r}");
    }

    #[test]
    fn adding_invalidates_index() {
        for build in [0usize, 1, 2] {
            let mut store = filled_store(20, 4, 5);
            match build {
                0 => store.build_ivf(4, 3, 1),
                1 => store.build_hnsw(&HnswConfig::default()),
                _ => store.build_pq(&PqConfig::default()),
            }
            store.add("new", vec![0.0; 4]).unwrap();
            assert_eq!(store.index_kind(), None);
            // Falls back to exact search and must find the new key.
            let hits = store.search(&[0.0; 4], 1, 2);
            assert_eq!(hits[0].0, "new");
        }
    }

    #[test]
    fn parallel_search_matches_single_thread_above_cutoff() {
        // 3000 vectors with nprobe covering most cells pushes the candidate
        // count past the parallel cutoff, so the parallel scoring path runs;
        // it must return exactly what a one-thread pool returns, for both
        // the IVF and the exact scan.
        let mut store = filled_store(3000, 8, 9);
        store.build_ivf(8, 3, 1);
        let q = store.get("e1234").unwrap().to_vec();
        let single = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let multi = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ivf_1 = single.install(|| store.search(&q, 25, 7));
        let ivf_4 = multi.install(|| store.search(&q, 25, 7));
        assert_eq!(ivf_1, ivf_4);
        assert_eq!(ivf_1[0].0, "e1234");
        let exact_1 = single.install(|| store.search_exact(&q, 25));
        let exact_4 = multi.install(|| store.search_exact(&q, 25));
        assert_eq!(exact_1, exact_4);
    }

    #[test]
    fn builds_are_deterministic_across_pool_sizes() {
        // 3000 vectors crosses the parallel cutoff for all three builders:
        // each must produce the same index (centroids/graph/codebooks
        // bit-for-bit) on one thread and on four.
        let single = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let multi = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        for build in [0usize, 1, 2] {
            let mut a = filled_store(3000, 8, 9);
            let mut b = filled_store(3000, 8, 9);
            match build {
                0 => {
                    single.install(|| a.build_ivf(32, 4, 7));
                    multi.install(|| b.build_ivf(32, 4, 7));
                }
                1 => {
                    let cfg = HnswConfig { ef_construction: 48, ..Default::default() };
                    single.install(|| a.build_hnsw(&cfg));
                    multi.install(|| b.build_hnsw(&cfg));
                }
                _ => {
                    let cfg = PqConfig { ks: 32, ..Default::default() };
                    single.install(|| a.build_pq(&cfg));
                    multi.install(|| b.build_pq(&cfg));
                }
            }
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "builder {build} diverged across pool sizes"
            );
        }
    }

    #[test]
    fn serde_roundtrip() {
        let mut store = filled_store(10, 4, 6);
        store.build_ivf(2, 2, 1);
        let json = serde_json::to_string(&store).unwrap();
        let back: EmbeddingStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 10);
        let q = store.get("e3").unwrap().to_vec();
        assert_eq!(store.search(&q, 3, 2), back.search(&q, 3, 2));
    }

    #[test]
    fn legacy_json_layout_still_deserializes() {
        // The pre-`kgnet-ann` wire shape: `vectors` as a bare row sequence
        // and an untagged flat-IVF `ivf` field. Old ModelStore directories
        // fall back to whole-artifact JSON, so this must keep parsing.
        let legacy = r#"{"dim":2,"metric":"L2","keys":["a","b","c"],
            "vectors":[[1.0,0.0],[0.0,1.0],[1.0,1.0]],
            "ivf":{"centroids":[[1.0,0.5],[0.0,1.0]],"lists":[[0,2],[1]]}}"#;
        let store: EmbeddingStore = serde_json::from_str(legacy).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.dim(), 2);
        assert_eq!(store.index_kind(), Some("ivf"));
        assert_eq!(store.search(&[1.0, 0.0], 1, 2)[0].0, "a");

        let no_index = r#"{"dim":2,"metric":"Cosine","keys":["x"],
            "vectors":[[0.5,0.5]],"ivf":null}"#;
        let store: EmbeddingStore = serde_json::from_str(no_index).unwrap();
        assert_eq!((store.len(), store.index_kind()), (1, None));

        // A corrupt legacy index (posting id past the table) is rejected
        // rather than loaded into a panic-at-search-time store.
        let bad = r#"{"dim":1,"metric":"L2","keys":["a"],"vectors":[[1.0]],
            "ivf":{"centroids":[[1.0]],"lists":[[7]]}}"#;
        assert!(serde_json::from_str::<EmbeddingStore>(bad).is_err());
    }

    #[test]
    fn binary_roundtrip_serves_identical_searches() {
        let path = std::env::temp_dir().join(format!("kgnet-embstore-{}.ann", std::process::id()));
        for build in [0usize, 1, 2] {
            let mut store = filled_store(500, 8, 20 + build as u64);
            match build {
                0 => store.build_ivf(16, 4, 2),
                1 => store.build_hnsw(&HnswConfig::default()),
                _ => store.build_pq(&PqConfig { ks: 32, ..Default::default() }),
            }
            store.save_binary(&path).unwrap();
            let back = EmbeddingStore::load_binary(&path).unwrap();
            assert_eq!(back.len(), store.len());
            assert_eq!(back.index_kind(), store.index_kind());
            let q = store.get("e123").unwrap().to_vec();
            assert_eq!(store.search(&q, 10, 4), back.search(&q, 10, 4));
            assert_eq!(store.search_exact(&q, 10), back.search_exact(&q, 10));
        }
        let _ = std::fs::remove_file(&path);
    }
}
