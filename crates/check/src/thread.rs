//! Thread spawn/join shims: logical (scheduler-managed) threads inside a
//! model-checking execution, real `std::thread` threads otherwise.

use std::io;
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

use crate::sched::{self, SchedShared, Tid};

enum Inner<T> {
    Real(std::thread::JoinHandle<T>),
    Logical { shared: Arc<SchedShared>, tid: Tid, result: Arc<StdMutex<Option<T>>> },
}

/// Owned permission to join a thread, mirroring `std::thread::JoinHandle`.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Real(h) => h.join(),
            Inner::Logical { shared, tid, result } => {
                let (_, me) =
                    sched::current().expect("logical threads must be joined from their execution");
                shared.join(me, tid);
                match result.lock().unwrap_or_else(PoisonError::into_inner).take() {
                    Some(v) => Ok(v),
                    // The target unwound without a value: the execution is
                    // aborting (its failure is already recorded), so unwind
                    // this thread too instead of fabricating a result.
                    None => sched::panic_abort(),
                }
            }
        }
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("thread spawn failed")
}

/// Mirror of `std::thread::Builder` covering the surface the workspace uses.
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    pub fn new() -> Self {
        Builder { name: None }
    }

    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match sched::current() {
            Some((shared, me)) => {
                let (tid, result) = sched::spawn_logical(&shared, self.name, f);
                // Spawning is itself a schedulable event: the child may run
                // before the parent's next instruction.
                shared.pause(me);
                Ok(JoinHandle(Inner::Logical { shared, tid, result }))
            }
            None => {
                let mut b = std::thread::Builder::new();
                if let Some(name) = self.name {
                    b = b.name(name);
                }
                b.spawn(f).map(|h| JoinHandle(Inner::Real(h)))
            }
        }
    }
}

/// A pure interleaving point under the scheduler; a real OS yield otherwise.
pub fn yield_now() {
    match sched::current() {
        Some((shared, me)) => shared.pause(me),
        None => std::thread::yield_now(),
    }
}
