//! kgnet-check: a deterministic concurrency model checker for the kgnet
//! workspace, in the spirit of loom and shuttle.
//!
//! A *scenario* is a closure that spawns threads through
//! [`thread::spawn`] and synchronises through the primitives in [`sync`].
//! [`explore`] runs the scenario under a scheduler that admits exactly one
//! logical thread at a time and treats every sync operation as a yield
//! point, enumerating interleavings two ways:
//!
//! 1. **Bounded-preemption DFS** — systematically walks the decision tree,
//!    bounding the number of involuntary context switches per execution
//!    (most real concurrency bugs need very few preemptions).
//! 2. **Seeded random walks** — SplitMix64-driven schedules that reach
//!    beyond the preemption bound; a failing schedule prints its seed and
//!    [`replay_seed`] reproduces it exactly.
//!
//! Any panic inside the scenario (a failed `assert!`), any deadlock (no
//! thread eligible to run and no timed waiter left), and any step-budget
//! blowout (livelock) fails the exploration with a replayable schedule.
//!
//! The primitives fall back to real `std::sync` behaviour when used outside
//! an execution, so code built on them (via the `kgnet-sync` facade under
//! `--cfg kgnet_check`) still runs normally in ordinary tests.
//!
//! ```
//! let report = kgnet_check::check(|| {
//!     let lock = std::sync::Arc::new(kgnet_check::sync::Mutex::new(0u32));
//!     let t = {
//!         let lock = std::sync::Arc::clone(&lock);
//!         kgnet_check::thread::spawn(move || *lock.lock() += 1)
//!     };
//!     *lock.lock() += 1;
//!     t.join().unwrap();
//!     assert_eq!(*lock.lock(), 2);
//! });
//! assert!(report.dfs_exhausted);
//! ```

#![deny(unsafe_code)]

mod sched;
pub mod sync;
pub mod thread;

use std::sync::Arc;

/// Exploration budgets. Environment overrides (all optional):
/// `KGNET_CHECK_MAX_SCHEDULES`, `KGNET_CHECK_RANDOM_ITERS`,
/// `KGNET_CHECK_SEED`, `KGNET_CHECK_PREEMPTION_BOUND`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Max involuntary context switches per DFS execution (`None` = unbounded).
    pub preemption_bound: Option<usize>,
    /// Cap on DFS schedules (the tree may be larger than any budget).
    pub max_schedules: usize,
    /// Number of random-walk schedules after the DFS phase.
    pub random_iters: usize,
    /// Base seed for the random phase; each walk derives its own seed,
    /// which is printed on failure.
    pub seed: u64,
    /// Per-execution yield-point budget; exceeding it is a livelock failure.
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: Some(2),
            max_schedules: 2_000,
            random_iters: 1_000,
            seed: 0x6b67_6e65_7463_6865, // "kgnetche"
            max_steps: 50_000,
        }
    }
}

impl Config {
    fn with_env(&self) -> Config {
        let mut c = self.clone();
        if let Some(v) = env_usize("KGNET_CHECK_MAX_SCHEDULES") {
            c.max_schedules = v;
        }
        if let Some(v) = env_usize("KGNET_CHECK_RANDOM_ITERS") {
            c.random_iters = v;
        }
        if let Some(v) = env_u64("KGNET_CHECK_SEED") {
            c.seed = v;
        }
        if let Some(v) = env_usize("KGNET_CHECK_PREEMPTION_BOUND") {
            c.preemption_bound = if v == 0 { None } else { Some(v) };
        }
        c
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// What an exploration covered. `schedules` counts executions run,
/// `distinct_schedules` counts distinct decision traces among them, and
/// `dfs_exhausted` reports whether the DFS phase fully enumerated the
/// bounded-preemption tree before hitting `max_schedules`.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    pub schedules: usize,
    pub distinct_schedules: usize,
    pub dfs_exhausted: bool,
}

/// Explore the scenario under `config`. Panics with a replayable schedule
/// (DFS trace or random seed) on the first assertion failure, deadlock, or
/// livelock; returns coverage statistics otherwise.
pub fn explore<F>(config: &Config, scenario: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    sched::explore_impl(&config.with_env(), Arc::new(scenario))
}

/// [`explore`] with the default config.
pub fn check<F>(scenario: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    explore(&Config::default(), scenario)
}

/// Re-run the single random-walk schedule identified by `seed` (as printed
/// in a failure message). Panics with the reproduced failure.
pub fn replay_seed<F>(seed: u64, scenario: F)
where
    F: Fn() + Send + Sync + 'static,
{
    sched::replay_seed_impl(&Config::default(), seed, Arc::new(scenario));
}

/// Re-run one explicit DFS decision trace (as printed in a failure
/// message). `config` must match the failing exploration's preemption
/// bound, since forced continuations are recomputed, not recorded.
pub fn replay_trace<F>(config: &Config, trace: &[usize], scenario: F)
where
    F: Fn() + Send + Sync + 'static,
{
    sched::replay_trace_impl(config, trace, Arc::new(scenario));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use sync::atomic::{AtomicUsize, Ordering};
    use sync::{Condvar, Mutex};

    fn panic_text(f: impl Fn() + Send + Sync + 'static) -> String {
        let err = catch_unwind(AssertUnwindSafe(|| check(f)))
            .expect_err("exploration should have failed");
        err.downcast_ref::<String>().cloned().unwrap_or_else(|| {
            err.downcast_ref::<&str>().map(|s| (*s).to_owned()).unwrap_or_default()
        })
    }

    #[test]
    fn mutex_protected_increment_passes_all_schedules() {
        let report = check(|| {
            let n = Arc::new(Mutex::new(0u32));
            let threads: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || *n.lock() += 1)
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(*n.lock(), 2);
        });
        assert!(report.dfs_exhausted, "tiny scenario must be fully enumerated");
        assert!(report.distinct_schedules > 1, "must actually explore interleavings");
    }

    #[test]
    fn finds_unsynchronised_read_modify_write_race() {
        // Classic lost update: load + store instead of fetch_add. The DFS
        // phase must find the schedule where both threads read 0.
        let msg = panic_text(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let threads: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        });
        assert!(msg.contains("lost update"), "wrong failure: {msg}");
        assert!(msg.contains("replay"), "failure must print a replay handle: {msg}");
    }

    #[test]
    fn detects_ab_ba_deadlock() {
        let msg = panic_text(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let t = {
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                thread::spawn(move || {
                    let _ga = a.lock();
                    let _gb = b.lock();
                })
            };
            {
                let _gb = b.lock();
                let _ga = a.lock();
            }
            t.join().unwrap();
        });
        assert!(msg.contains("deadlock"), "wrong failure: {msg}");
    }

    #[test]
    fn detects_lost_wakeup_on_unprotected_flag() {
        // The flag is an atomic, not state under the condvar's mutex, so the
        // setter can slip between the waiter's check and its wait: the
        // notify fires with nobody parked and the waiter sleeps forever.
        // The checker must surface that schedule as a deadlock.
        let msg = panic_text(|| {
            let flag = Arc::new(sync::atomic::AtomicBool::new(false));
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let waiter = {
                let flag = Arc::clone(&flag);
                let pair = Arc::clone(&pair);
                thread::spawn(move || {
                    let (m, cv) = &*pair;
                    let g = m.lock();
                    if !flag.load(Ordering::SeqCst) {
                        // bug: check is outside the mutex-protected state
                        let _g = cv.wait(g);
                    }
                })
            };
            flag.store(true, Ordering::SeqCst);
            pair.1.notify_one();
            waiter.join().unwrap();
        });
        assert!(msg.contains("deadlock"), "wrong failure: {msg}");
    }

    #[test]
    fn condvar_predicate_loop_passes_all_schedules() {
        check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let waiter = {
                let pair = Arc::clone(&pair);
                thread::spawn(move || {
                    let (flag, cv) = &*pair;
                    let mut g = flag.lock();
                    while !*g {
                        g = cv.wait(g);
                    }
                })
            };
            let (flag, cv) = &*pair;
            *flag.lock() = true;
            cv.notify_one();
            waiter.join().unwrap();
        });
    }

    #[test]
    fn timed_wait_never_reported_as_deadlock() {
        // A wait_timeout with no notifier must fall through via the modelled
        // timeout instead of deadlocking the execution.
        let report = check(|| {
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let (m, cv) = &*pair;
            let g = m.lock();
            let (_g, res) = cv.wait_timeout(g, std::time::Duration::from_millis(1));
            assert!(res.timed_out());
        });
        assert!(report.schedules > 0);
    }

    #[test]
    fn failing_seed_is_replayable() {
        // Force the failure to surface in the random phase by disabling the
        // DFS phase, then parse the printed seed and reproduce the failure
        // with replay_seed.
        let racy = || {
            let n = Arc::new(AtomicUsize::new(0));
            let threads: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        };
        let config = Config {
            max_schedules: 1, // one DFS run (the serial schedule, which passes)
            preemption_bound: Some(0),
            random_iters: 4_000,
            ..Config::default()
        };
        let err = catch_unwind(AssertUnwindSafe(|| explore(&config, racy)))
            .expect_err("random phase should find the race");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        let seed_hex = msg
            .split("seed 0x")
            .nth(1)
            .and_then(|rest| rest.get(..16))
            .expect("failure message must contain a seed");
        let seed = u64::from_str_radix(seed_hex, 16).expect("seed parses");
        let replay_err = catch_unwind(AssertUnwindSafe(|| replay_seed(seed, racy)))
            .expect_err("replaying the printed seed must reproduce the failure");
        let replay_msg = replay_err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(replay_msg.contains("lost update"), "replay found: {replay_msg}");
    }

    #[test]
    fn rwlock_readers_exclude_writer() {
        check(|| {
            let lock = Arc::new(sync::RwLock::new((0u32, 0u32)));
            let writer = {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    let mut g = lock.write();
                    g.0 += 1;
                    // A reader scheduled between these two writes would see
                    // a torn pair — the write lock must prevent that.
                    g.1 += 1;
                })
            };
            let g = lock.read();
            assert_eq!(g.0, g.1, "torn read under rwlock");
            drop(g);
            writer.join().unwrap();
        });
    }

    #[test]
    fn primitives_fall_back_to_real_sync_outside_executions() {
        let n = Arc::new(Mutex::new(0u32));
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let n = Arc::clone(&n);
                let pair = Arc::clone(&pair);
                thread::spawn(move || {
                    let (flag, cv) = &*pair;
                    let mut g = flag.lock();
                    while !*g {
                        g = cv.wait(g);
                    }
                    drop(g);
                    *n.lock() += 1;
                })
            })
            .collect();
        {
            let (flag, cv) = &*pair;
            *flag.lock() = true;
            cv.notify_all();
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*n.lock(), 4);
    }

    #[test]
    fn report_counts_distinct_schedules() {
        let report = check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let threads: Vec<_> = (0..3)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 3);
        });
        assert!(report.distinct_schedules >= 10, "got {report:?}");
    }
}
