//! The deterministic scheduler: one logical thread runs at a time.
//!
//! Every logical thread is a real OS thread, but a central token
//! (`ExecState::active`) admits exactly one of them at any moment; all
//! others are parked on a condvar. Each instrumented sync operation calls
//! [`SchedShared::yield_with`], which records the thread's intent (acquire
//! this mutex, wait on that condvar, join thread t, …), asks the current
//! [`Chooser`] which *eligible* thread runs next, and parks until the token
//! comes back. Because the scheduler only ever hands the token to a thread
//! whose pending operation can complete, the operation is finished
//! atomically under the scheduler lock the moment the thread wakes
//! ([`SchedShared::complete_op`]) — there are no races inside the model
//! itself.
//!
//! A whole execution is therefore a deterministic function of the sequence
//! of choices made at decision points (moments with more than one eligible
//! thread). [`Chooser::Dfs`] enumerates those sequences depth-first with a
//! bounded number of preemptions; [`Chooser::Random`] drives them from a
//! SplitMix64 stream so a failing schedule is reproducible from its printed
//! seed; [`Chooser::Trace`] replays an explicit recorded choice vector.
//!
//! Blocked-forever states are detected, not suffered: if no thread is
//! eligible and no timed waiter remains, the execution fails with a
//! deadlock report naming every thread and what it is blocked on. Timed
//! condvar waits time out only when nothing else can run, which models the
//! scheduler-independent guarantee "a timeout eventually fires" without
//! exploding the schedule space.

use std::cell::RefCell;
use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
};

use crate::{Config, Report};

pub(crate) type Tid = usize;
pub(crate) type ObjId = usize;

/// Panic payload used to unwind logical threads when the execution they
/// belong to has aborted (another thread failed, or a deadlock/step-budget
/// failure was recorded). Never reported as a failure itself.
pub(crate) struct AbortExecution;

pub(crate) fn panic_abort() -> ! {
    panic::panic_any(AbortExecution)
}

/// Monotone process-wide execution counter: lets primitives created in one
/// execution (or outside any execution, e.g. in statics) lazily re-register
/// themselves when first touched by a later execution.
static EXEC_COUNTER: AtomicU64 = AtomicU64::new(1);

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    /// Wants the mutex; eligible once it is free.
    Lock(ObjId),
    /// Wants shared access; eligible while no writer holds the lock.
    ReadLock(ObjId),
    /// Wants exclusive access; eligible once no reader or writer remains.
    WriteLock(ObjId),
    /// Parked on a condvar having logically released `mutex`; eligible once
    /// notified (or timed out) *and* the mutex can be reacquired.
    Waiting {
        cv: ObjId,
        mutex: ObjId,
        timed: bool,
        notified: bool,
        timed_out: bool,
    },
    /// Joining another logical thread; eligible once it has finished.
    Join(Tid),
    Finished,
}

#[derive(Debug)]
pub(crate) enum Obj {
    Mutex { held: bool },
    RwLock { readers: usize, writer: bool },
    Condvar,
}

#[derive(Debug)]
struct ThreadSlot {
    status: Status,
    name: String,
}

/// One record per decision point: how many threads were eligible and which
/// index (in the canonical current-thread-first ordering) was chosen.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TracePoint {
    pub options: usize,
    pub chosen: usize,
}

pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub(crate) enum Chooser {
    Dfs { prefix: Vec<usize>, cursor: usize },
    Random(SplitMix64),
    Trace { choices: Vec<usize>, cursor: usize },
}

impl Chooser {
    fn next(&mut self, n: usize) -> usize {
        match self {
            Chooser::Dfs { prefix, cursor } => {
                let i = if *cursor < prefix.len() {
                    prefix[*cursor]
                } else {
                    prefix.push(0);
                    0
                };
                *cursor += 1;
                i.min(n - 1)
            }
            Chooser::Random(rng) => (rng.next() % n as u64) as usize,
            Chooser::Trace { choices, cursor } => {
                let i = choices.get(*cursor).copied().unwrap_or(0);
                *cursor += 1;
                i.min(n - 1)
            }
        }
    }

    /// DFS bounds preemptions; random walks and trace replays of random
    /// walks do not. Trace replay of a DFS trace must re-apply the bound so
    /// forced (unrecorded) continuations are recomputed identically.
    fn preemption_bound(&self, config: &Config) -> Option<usize> {
        match self {
            Chooser::Random(_) => None,
            Chooser::Dfs { .. } | Chooser::Trace { .. } => config.preemption_bound,
        }
    }
}

struct ExecState {
    threads: Vec<ThreadSlot>,
    objects: Vec<Obj>,
    active: Option<Tid>,
    live: usize,
    steps: usize,
    preemptions: usize,
    preemption_bound: Option<usize>,
    abort: bool,
    failure: Option<String>,
    trace: Vec<TracePoint>,
    chooser: Chooser,
    handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct SchedShared {
    state: StdMutex<ExecState>,
    /// Logical threads park here waiting for the activation token.
    cv: StdCondvar,
    /// The runner parks here waiting for the execution to drain.
    done: StdCondvar,
    pub(crate) exec_id: u64,
    max_steps: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<SchedShared>, Tid)>> = const { RefCell::new(None) };
}

/// The scheduler context of the calling thread, if it is a logical thread
/// of an execution in progress. `None` means "run on the real primitives".
pub(crate) fn current() -> Option<(Arc<SchedShared>, Tid)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn lock_ignore_poison<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl SchedShared {
    fn eligible(st: &ExecState, tid: Tid) -> bool {
        match st.threads[tid].status {
            Status::Runnable => true,
            Status::Lock(o) => matches!(st.objects[o], Obj::Mutex { held: false }),
            Status::ReadLock(o) => matches!(st.objects[o], Obj::RwLock { writer: false, .. }),
            Status::WriteLock(o) => {
                matches!(st.objects[o], Obj::RwLock { readers: 0, writer: false })
            }
            Status::Waiting { mutex, notified, .. } => {
                notified && matches!(st.objects[mutex], Obj::Mutex { held: false })
            }
            Status::Join(t) => st.threads[t].status == Status::Finished,
            Status::Finished => false,
        }
    }

    fn fail_locked(&self, st: &mut ExecState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        st.active = None;
        self.cv.notify_all();
        self.done.notify_all();
    }

    /// Pick and activate the next thread. `from` is the thread that just
    /// yielded (None when called from thread-exit bookkeeping).
    fn schedule_from(&self, st: &mut ExecState, from: Option<Tid>) {
        if st.live == 0 {
            st.active = None;
            self.done.notify_all();
            return;
        }
        loop {
            let mut options: Vec<Tid> =
                (0..st.threads.len()).filter(|&t| Self::eligible(st, t)).collect();
            if options.is_empty() {
                // Fire a timeout: timed waiters only wake this way when the
                // execution cannot otherwise make progress.
                let timed = (0..st.threads.len()).find(|&t| {
                    matches!(
                        st.threads[t].status,
                        Status::Waiting { timed: true, notified: false, .. }
                    )
                });
                if let Some(t) = timed {
                    if let Status::Waiting { notified, timed_out, .. } = &mut st.threads[t].status {
                        *notified = true;
                        *timed_out = true;
                    }
                    continue;
                }
                let report: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.status != Status::Finished)
                    .map(|(t, s)| format!("  thread {t} '{}': {:?}", s.name, s.status))
                    .collect();
                self.fail_locked(
                    st,
                    format!(
                        "deadlock: {} live thread(s), none eligible\n{}",
                        st.live,
                        report.join("\n")
                    ),
                );
                return;
            }
            // Canonical ordering: the yielding thread first (index 0 means
            // "continue without preempting"), then ascending thread id.
            let from_eligible = match from {
                Some(f) => {
                    if let Some(pos) = options.iter().position(|&t| t == f) {
                        options.remove(pos);
                        options.insert(0, f);
                        true
                    } else {
                        false
                    }
                }
                None => false,
            };
            let forced = from_eligible
                && st.preemption_bound.is_some_and(|b| st.preemptions >= b)
                && options.len() > 1;
            let chosen = if options.len() == 1 || forced {
                options[0]
            } else {
                let idx = st.chooser.next(options.len());
                st.trace.push(TracePoint { options: options.len(), chosen: idx });
                options[idx]
            };
            if from_eligible && Some(chosen) != from {
                st.preemptions += 1;
            }
            st.active = Some(chosen);
            self.cv.notify_all();
            return;
        }
    }

    /// Complete the operation the thread declared before parking. Only
    /// called with the activation token held, so the updates are atomic.
    fn complete_op(st: &mut ExecState, me: Tid) {
        match st.threads[me].status.clone() {
            Status::Lock(o) | Status::Waiting { mutex: o, .. } => {
                if let Obj::Mutex { held } = &mut st.objects[o] {
                    debug_assert!(!*held);
                    *held = true;
                }
            }
            Status::ReadLock(o) => {
                if let Obj::RwLock { readers, .. } = &mut st.objects[o] {
                    *readers += 1;
                }
            }
            Status::WriteLock(o) => {
                if let Obj::RwLock { writer, .. } = &mut st.objects[o] {
                    debug_assert!(!*writer);
                    *writer = true;
                }
            }
            Status::Runnable | Status::Join(_) => {}
            Status::Finished => unreachable!("finished thread scheduled"),
        }
        st.threads[me].status = Status::Runnable;
    }

    /// The heart of the model: declare intent, reschedule, park until the
    /// token returns, then complete the declared operation. Returns the
    /// status as it was at wakeup (so condvar waits can see `timed_out`).
    pub(crate) fn yield_with(&self, me: Tid, status: Status) -> Status {
        self.yield_inner(me, status, |_| {})
    }

    fn yield_inner(&self, me: Tid, status: Status, pre: impl FnOnce(&mut ExecState)) -> Status {
        let mut st = lock_ignore_poison(&self.state);
        if st.abort {
            drop(st);
            panic_abort();
        }
        pre(&mut st);
        st.threads[me].status = status;
        st.steps += 1;
        if st.steps > self.max_steps {
            self.fail_locked(
                &mut st,
                format!("step budget ({}) exceeded: possible livelock", self.max_steps),
            );
            drop(st);
            panic_abort();
        }
        self.schedule_from(&mut st, Some(me));
        while st.active != Some(me) {
            if st.abort {
                drop(st);
                panic_abort();
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let woken = st.threads[me].status.clone();
        Self::complete_op(&mut st, me);
        woken
    }

    // ---- operations exposed to the instrumented primitives ----

    pub(crate) fn register_object(&self, obj: Obj) -> ObjId {
        let mut st = lock_ignore_poison(&self.state);
        st.objects.push(obj);
        st.objects.len() - 1
    }

    pub(crate) fn mutex_lock(&self, me: Tid, id: ObjId) {
        self.yield_with(me, Status::Lock(id));
    }

    pub(crate) fn mutex_unlock(&self, id: ObjId) {
        let mut st = lock_ignore_poison(&self.state);
        if let Obj::Mutex { held } = &mut st.objects[id] {
            *held = false;
        }
    }

    pub(crate) fn rw_read(&self, me: Tid, id: ObjId) {
        self.yield_with(me, Status::ReadLock(id));
    }

    pub(crate) fn rw_read_unlock(&self, id: ObjId) {
        let mut st = lock_ignore_poison(&self.state);
        if let Obj::RwLock { readers, .. } = &mut st.objects[id] {
            *readers = readers.saturating_sub(1);
        }
    }

    pub(crate) fn rw_write(&self, me: Tid, id: ObjId) {
        self.yield_with(me, Status::WriteLock(id));
    }

    pub(crate) fn rw_write_unlock(&self, id: ObjId) {
        let mut st = lock_ignore_poison(&self.state);
        if let Obj::RwLock { writer, .. } = &mut st.objects[id] {
            *writer = false;
        }
    }

    /// Atomically release `mutex`, park on `cv`, and on wakeup reacquire
    /// `mutex`. Returns true when the wakeup was a timeout.
    pub(crate) fn condvar_wait(&self, me: Tid, cv: ObjId, mutex: ObjId, timed: bool) -> bool {
        // A plain yield *before* the wait registers: in real code the thread
        // can be preempted between its last predicate check and the moment
        // `wait` parks it, and a notify landing in that window is lost if
        // the predicate state is not protected by `mutex`. Without this
        // yield the model would make check-then-wait look atomic and hide
        // exactly that class of lost-wakeup bug.
        self.pause(me);
        let woken = self.yield_inner(
            me,
            Status::Waiting { cv, mutex, timed, notified: false, timed_out: false },
            |st| {
                if let Obj::Mutex { held } = &mut st.objects[mutex] {
                    *held = false;
                }
            },
        );
        matches!(woken, Status::Waiting { timed_out: true, .. })
    }

    pub(crate) fn condvar_notify(&self, me: Tid, cv: ObjId, all: bool) {
        // The notify itself is a yield point (ordering of notify vs wait is
        // exactly what lost-wakeup bugs depend on), then the wakeup flags
        // are applied atomically.
        self.yield_with(me, Status::Runnable);
        let mut st = lock_ignore_poison(&self.state);
        let mut remaining = if all { usize::MAX } else { 1 };
        for t in 0..st.threads.len() {
            if remaining == 0 {
                break;
            }
            if let Status::Waiting { cv: c, notified, .. } = &mut st.threads[t].status {
                if *c == cv && !*notified {
                    *notified = true;
                    remaining -= 1;
                }
            }
        }
    }

    pub(crate) fn join(&self, me: Tid, target: Tid) {
        self.yield_with(me, Status::Join(target));
    }

    /// An un-annotated interleaving point (atomic ops, yield_now, spawn).
    pub(crate) fn pause(&self, me: Tid) {
        self.yield_with(me, Status::Runnable);
    }

    // ---- thread lifecycle ----

    fn finish(&self, tid: Tid, panicked: Option<String>) {
        let mut st = lock_ignore_poison(&self.state);
        st.threads[tid].status = Status::Finished;
        st.live -= 1;
        if let Some(msg) = panicked {
            let name = st.threads[tid].name.clone();
            self.fail_locked(&mut st, format!("thread {tid} '{name}' panicked: {msg}"));
        }
        if st.abort || st.live == 0 {
            st.active = None;
            self.done.notify_all();
            return;
        }
        self.schedule_from(&mut st, None);
    }
}

/// Register and start a new logical thread. The real OS thread parks until
/// the scheduler first hands it the token.
pub(crate) fn spawn_logical<T: Send + 'static>(
    shared: &Arc<SchedShared>,
    name: Option<String>,
    f: impl FnOnce() -> T + Send + 'static,
) -> (Tid, Arc<StdMutex<Option<T>>>) {
    let (tid, os_name) = {
        let mut st = lock_ignore_poison(&shared.state);
        let tid = st.threads.len();
        let name = name.unwrap_or_else(|| format!("logical-{tid}"));
        st.threads.push(ThreadSlot { status: Status::Runnable, name: name.clone() });
        st.live += 1;
        (tid, name)
    };
    let result = Arc::new(StdMutex::new(None));
    let shared2 = Arc::clone(shared);
    let result2 = Arc::clone(&result);
    let handle = std::thread::Builder::new()
        .name(format!("kgnet-check-{os_name}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&shared2), tid)));
            // Park until first scheduled (or the execution aborts first).
            {
                let mut st = lock_ignore_poison(&shared2.state);
                while st.active != Some(tid) {
                    if st.abort {
                        drop(st);
                        shared2.finish(tid, None);
                        return;
                    }
                    st = shared2.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            }
            match panic::catch_unwind(AssertUnwindSafe(f)) {
                Ok(v) => {
                    *lock_ignore_poison(&result2) = Some(v);
                    shared2.finish(tid, None);
                }
                Err(payload) => {
                    if payload.is::<AbortExecution>() {
                        shared2.finish(tid, None);
                    } else {
                        shared2.finish(tid, Some(panic_message(&*payload)));
                    }
                }
            }
        })
        .expect("spawn logical thread");
    lock_ignore_poison(&shared.state).handles.push(handle);
    (tid, result)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

pub(crate) struct RunOutcome {
    pub trace: Vec<TracePoint>,
    pub failure: Option<String>,
}

/// Run the scenario once under the given chooser and return the decision
/// trace plus any failure. Each execution gets a fresh `SchedShared` and a
/// globally unique execution id (primitives re-register lazily against it).
pub(crate) fn run_once(
    config: &Config,
    chooser: Chooser,
    f: Arc<dyn Fn() + Send + Sync>,
) -> RunOutcome {
    let bound = chooser.preemption_bound(config);
    let shared = Arc::new(SchedShared {
        state: StdMutex::new(ExecState {
            threads: Vec::new(),
            objects: Vec::new(),
            active: None,
            live: 0,
            steps: 0,
            preemptions: 0,
            preemption_bound: bound,
            abort: false,
            failure: None,
            trace: Vec::new(),
            chooser,
            handles: Vec::new(),
        }),
        cv: StdCondvar::new(),
        done: StdCondvar::new(),
        exec_id: EXEC_COUNTER.fetch_add(1, Ordering::Relaxed),
        max_steps: config.max_steps,
    });
    let (root, _result) = spawn_logical(&shared, Some("root".to_owned()), move || f());
    {
        let mut st = lock_ignore_poison(&shared.state);
        st.active = Some(root);
        shared.cv.notify_all();
        while st.live > 0 {
            st = shared.done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
    let handles = std::mem::take(&mut lock_ignore_poison(&shared.state).handles);
    for h in handles {
        let _ = h.join();
    }
    let mut st = lock_ignore_poison(&shared.state);
    RunOutcome { trace: std::mem::take(&mut st.trace), failure: st.failure.take() }
}

/// Advance the DFS prefix to the next unexplored branch; false = exhausted.
fn dfs_advance(prefix: &mut Vec<usize>, trace: &[TracePoint]) -> bool {
    let mut i = trace.len();
    while i > 0 {
        i -= 1;
        if trace[i].chosen + 1 < trace[i].options {
            prefix.clear();
            prefix.extend(trace[..i].iter().map(|p| p.chosen));
            prefix.push(trace[i].chosen + 1);
            return true;
        }
    }
    false
}

fn trace_hash(trace: &[TracePoint]) -> u64 {
    // FxHash-style mix; enough to count distinct schedules.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in trace {
        for v in [p.options as u64, p.chosen as u64] {
            h = (h ^ v).wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

fn chosen_column(trace: &[TracePoint]) -> Vec<usize> {
    trace.iter().map(|p| p.chosen).collect()
}

/// Install a panic hook that silences the internal [`AbortExecution`]
/// unwinds (they are control flow, not failures). Idempotent.
pub(crate) fn install_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<AbortExecution>() {
                return;
            }
            prev(info);
        }));
    });
}

pub(crate) fn explore_impl(config: &Config, f: Arc<dyn Fn() + Send + Sync>) -> Report {
    install_hook();
    let mut distinct: HashSet<u64> = HashSet::new();
    let mut schedules = 0usize;
    let mut exhausted = false;

    // Phase 1: bounded-preemption DFS.
    let mut prefix: Vec<usize> = Vec::new();
    loop {
        let outcome =
            run_once(config, Chooser::Dfs { prefix: prefix.clone(), cursor: 0 }, Arc::clone(&f));
        schedules += 1;
        distinct.insert(trace_hash(&outcome.trace));
        if let Some(cause) = outcome.failure {
            panic!(
                "kgnet-check: schedule failure (DFS schedule #{schedules}, preemption bound {:?})\n\
                 cause: {cause}\n\
                 replay: kgnet_check::replay_trace(&config, &{:?}, scenario)",
                config.preemption_bound,
                chosen_column(&outcome.trace),
            );
        }
        if !dfs_advance(&mut prefix, &outcome.trace) {
            exhausted = true;
            break;
        }
        if schedules >= config.max_schedules {
            break;
        }
    }

    // Phase 2: seeded random walks (unbounded preemptions).
    let mut gen = SplitMix64(config.seed);
    for i in 0..config.random_iters {
        let seed = gen.next();
        let outcome = run_once(config, Chooser::Random(SplitMix64(seed)), Arc::clone(&f));
        schedules += 1;
        distinct.insert(trace_hash(&outcome.trace));
        if let Some(cause) = outcome.failure {
            panic!(
                "kgnet-check: schedule failure (random walk #{i}, seed {seed:#018x})\n\
                 cause: {cause}\n\
                 replay: kgnet_check::replay_seed({seed:#018x}, scenario)",
            );
        }
    }

    Report { schedules, distinct_schedules: distinct.len(), dfs_exhausted: exhausted }
}

pub(crate) fn replay_seed_impl(config: &Config, seed: u64, f: Arc<dyn Fn() + Send + Sync>) {
    install_hook();
    let outcome = run_once(config, Chooser::Random(SplitMix64(seed)), f);
    if let Some(cause) = outcome.failure {
        panic!("kgnet-check: replayed failure (seed {seed:#018x})\ncause: {cause}");
    }
}

pub(crate) fn replay_trace_impl(config: &Config, trace: &[usize], f: Arc<dyn Fn() + Send + Sync>) {
    install_hook();
    let outcome = run_once(config, Chooser::Trace { choices: trace.to_vec(), cursor: 0 }, f);
    if let Some(cause) = outcome.failure {
        panic!("kgnet-check: replayed failure (trace {trace:?})\ncause: {cause}");
    }
}
