//! Instrumented sync primitives: identical API to the `kgnet-sync` facade,
//! but every operation is a scheduler yield point when the calling thread
//! belongs to a model-checking execution.
//!
//! Outside an execution (unit tests compiled under `--cfg kgnet_check`,
//! helper threads the checker does not manage) every primitive falls back
//! to the real `std::sync` implementation, so code is always correct — the
//! scheduler only *adds* control over interleavings.
//!
//! Model notes: atomics are explored with sequentially-consistent semantics
//! regardless of the `Ordering` argument (the scheduler serialises all
//! operations), and a primitive must not be held across the boundary of an
//! execution (locked outside, released inside, or vice versa).

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
    RwLock as StdRwLock, RwLockReadGuard as StdRwLockReadGuard,
    RwLockWriteGuard as StdRwLockWriteGuard,
};
use std::time::Duration;

use crate::sched::{self, Obj, ObjId, SchedShared};
use std::sync::Arc;

fn lock_ignore_poison<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Lazily-assigned per-execution object identity. Executions are numbered
/// by a process-global counter, so a primitive created in one execution (or
/// in a `static`) re-registers itself the first time a later execution
/// touches it.
struct ObjMeta {
    slot: StdMutex<(u64, ObjId)>,
}

impl ObjMeta {
    const fn new() -> Self {
        ObjMeta { slot: StdMutex::new((0, 0)) }
    }

    fn id(&self, shared: &SchedShared, make: impl FnOnce() -> Obj) -> ObjId {
        let mut s = lock_ignore_poison(&self.slot);
        if s.0 != shared.exec_id {
            s.1 = shared.register_object(make());
            s.0 = shared.exec_id;
        }
        s.1
    }
}

// ---------------------------------------------------------------- Mutex --

/// A mutex with the non-poisoning `parking_lot` API shape the facade uses.
pub struct Mutex<T: ?Sized> {
    meta: ObjMeta,
    raw: StdMutex<()>,
    data: UnsafeCell<T>,
}

// SAFETY: same bounds as `std::sync::Mutex` — exclusive access to the inner
// value is guaranteed either by the raw mutex (fallback mode) or by the
// scheduler admitting one logical thread at a time (checked mode).
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: see above; `&Mutex<T>` only hands out `&T`/`&mut T` under the
// exclusion property, so `T: Send` suffices exactly as for `std`.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { meta: ObjMeta::new(), raw: StdMutex::new(()), data: UnsafeCell::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match sched::current() {
            Some((shared, me)) => {
                let id = self.meta.id(&shared, || Obj::Mutex { held: false });
                shared.mutex_lock(me, id);
                MutexGuard { lock: self, raw: None, sched: Some((shared, id)) }
            }
            None => {
                MutexGuard { lock: self, raw: Some(lock_ignore_poison(&self.raw)), sched: None }
            }
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// `Some` in fallback mode: the real lock that provides exclusion.
    raw: Option<StdMutexGuard<'a, ()>>,
    /// `Some` in checked mode: the execution that logically holds the lock.
    sched: Option<(Arc<SchedShared>, ObjId)>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Decompose without running `Drop` (the condvar wait protocol hands
    /// ownership of the raw/logical lock to the condvar).
    #[allow(clippy::type_complexity)]
    fn into_parts(
        self,
    ) -> (&'a Mutex<T>, Option<StdMutexGuard<'a, ()>>, Option<(Arc<SchedShared>, ObjId)>) {
        let mut g = ManuallyDrop::new(self);
        (g.lock, g.raw.take(), g.sched.take())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive access — via the held raw
        // mutex in fallback mode, or via the scheduler's one-active-thread
        // invariant plus the logical `held` flag in checked mode.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`; the guard is unique while it exists.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((shared, id)) = self.sched.take() {
            shared.mutex_unlock(id);
        }
    }
}

// -------------------------------------------------------------- Condvar --

pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

pub struct Condvar {
    meta: ObjMeta,
    raw: StdCondvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { meta: ObjMeta::new(), raw: StdCondvar::new() }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let (lock, raw, sched_ctx) = guard.into_parts();
        match sched_ctx {
            Some((shared, mutex_id)) => {
                let (_, me) = sched::current().expect("checked guard outside its execution");
                let cv_id = self.meta.id(&shared, || Obj::Condvar);
                shared.condvar_wait(me, cv_id, mutex_id, false);
                MutexGuard { lock, raw: None, sched: Some((shared, mutex_id)) }
            }
            None => {
                let raw = raw.expect("fallback guard always holds the raw lock");
                let raw = self.raw.wait(raw).unwrap_or_else(PoisonError::into_inner);
                MutexGuard { lock, raw: Some(raw), sched: None }
            }
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let (lock, raw, sched_ctx) = guard.into_parts();
        match sched_ctx {
            Some((shared, mutex_id)) => {
                let (_, me) = sched::current().expect("checked guard outside its execution");
                let cv_id = self.meta.id(&shared, || Obj::Condvar);
                // In the model a timeout fires only when nothing else can
                // run: progress is never silently lost, livelocks are still
                // caught by the step budget.
                let timed_out = shared.condvar_wait(me, cv_id, mutex_id, true);
                (
                    MutexGuard { lock, raw: None, sched: Some((shared, mutex_id)) },
                    WaitTimeoutResult { timed_out },
                )
            }
            None => {
                let raw = raw.expect("fallback guard always holds the raw lock");
                let (raw, res) =
                    self.raw.wait_timeout(raw, timeout).unwrap_or_else(PoisonError::into_inner);
                (
                    MutexGuard { lock, raw: Some(raw), sched: None },
                    WaitTimeoutResult { timed_out: res.timed_out() },
                )
            }
        }
    }

    pub fn notify_one(&self) {
        match sched::current() {
            Some((shared, me)) => {
                let cv_id = self.meta.id(&shared, || Obj::Condvar);
                shared.condvar_notify(me, cv_id, false);
            }
            None => self.raw.notify_one(),
        }
    }

    pub fn notify_all(&self) {
        match sched::current() {
            Some((shared, me)) => {
                let cv_id = self.meta.id(&shared, || Obj::Condvar);
                shared.condvar_notify(me, cv_id, true);
            }
            None => self.raw.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

// --------------------------------------------------------------- RwLock --

pub struct RwLock<T: ?Sized> {
    meta: ObjMeta,
    raw: StdRwLock<()>,
    data: UnsafeCell<T>,
}

// SAFETY: same bounds as `std::sync::RwLock` — shared/exclusive access is
// guaranteed by the raw rwlock or the scheduler's reader/writer accounting.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
// SAFETY: readers hand out `&T` concurrently, so `T: Sync` is required on
// top of `T: Send`, exactly as for `std::sync::RwLock`.
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { meta: ObjMeta::new(), raw: StdRwLock::new(()), data: UnsafeCell::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match sched::current() {
            Some((shared, me)) => {
                let id = self.meta.id(&shared, || Obj::RwLock { readers: 0, writer: false });
                shared.rw_read(me, id);
                RwLockReadGuard { lock: self, _raw: None, sched: Some((shared, id)) }
            }
            None => RwLockReadGuard {
                lock: self,
                _raw: Some(self.raw.read().unwrap_or_else(PoisonError::into_inner)),
                sched: None,
            },
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match sched::current() {
            Some((shared, me)) => {
                let id = self.meta.id(&shared, || Obj::RwLock { readers: 0, writer: false });
                shared.rw_write(me, id);
                RwLockWriteGuard { lock: self, _raw: None, sched: Some((shared, id)) }
            }
            None => RwLockWriteGuard {
                lock: self,
                _raw: Some(self.raw.write().unwrap_or_else(PoisonError::into_inner)),
                sched: None,
            },
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    /// Held purely for its unlock-on-drop effect in fallback mode.
    _raw: Option<StdRwLockReadGuard<'a, ()>>,
    sched: Option<(Arc<SchedShared>, ObjId)>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves shared access: real read lock held, or
        // the scheduler's reader count excludes any writer.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((shared, id)) = self.sched.take() {
            shared.rw_read_unlock(id);
        }
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    /// Held purely for its unlock-on-drop effect in fallback mode.
    _raw: Option<StdRwLockWriteGuard<'a, ()>>,
    sched: Option<(Arc<SchedShared>, ObjId)>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive access: real write lock held,
        // or the scheduler's writer flag excludes all other threads.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`; the write guard is unique while it exists.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((shared, id)) = self.sched.take() {
            shared.rw_write_unlock(id);
        }
    }
}

// -------------------------------------------------------------- Atomics --

/// Atomics with a scheduler yield before every operation. Orderings are
/// accepted for API compatibility but the model is sequentially consistent.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::sched;

    fn pause() {
        if let Some((shared, me)) = sched::current() {
            shared.pause(me);
        }
    }

    macro_rules! checked_int_atomic {
        ($name:ident, $std:ident, $t:ty) => {
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                pub const fn new(v: $t) -> Self {
                    Self { inner: std::sync::atomic::$std::new(v) }
                }

                pub fn load(&self, o: Ordering) -> $t {
                    pause();
                    self.inner.load(o)
                }

                pub fn store(&self, v: $t, o: Ordering) {
                    pause();
                    self.inner.store(v, o)
                }

                pub fn swap(&self, v: $t, o: Ordering) -> $t {
                    pause();
                    self.inner.swap(v, o)
                }

                pub fn fetch_add(&self, v: $t, o: Ordering) -> $t {
                    pause();
                    self.inner.fetch_add(v, o)
                }

                pub fn fetch_sub(&self, v: $t, o: Ordering) -> $t {
                    pause();
                    self.inner.fetch_sub(v, o)
                }

                pub fn fetch_max(&self, v: $t, o: Ordering) -> $t {
                    pause();
                    self.inner.fetch_max(v, o)
                }

                pub fn fetch_min(&self, v: $t, o: Ordering) -> $t {
                    pause();
                    self.inner.fetch_min(v, o)
                }

                pub fn compare_exchange(
                    &self,
                    current: $t,
                    new: $t,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$t, $t> {
                    pause();
                    self.inner.compare_exchange(current, new, ok, err)
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $t,
                    new: $t,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$t, $t> {
                    pause();
                    self.inner.compare_exchange(current, new, ok, err)
                }

                pub fn into_inner(self) -> $t {
                    self.inner.into_inner()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$t>::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    write!(f, "{:?}", self.inner)
                }
            }
        };
    }

    checked_int_atomic!(AtomicUsize, AtomicUsize, usize);
    checked_int_atomic!(AtomicU64, AtomicU64, u64);
    checked_int_atomic!(AtomicU32, AtomicU32, u32);
    checked_int_atomic!(AtomicI64, AtomicI64, i64);

    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self { inner: std::sync::atomic::AtomicBool::new(v) }
        }

        pub fn load(&self, o: Ordering) -> bool {
            pause();
            self.inner.load(o)
        }

        pub fn store(&self, v: bool, o: Ordering) {
            pause();
            self.inner.store(v, o)
        }

        pub fn swap(&self, v: bool, o: Ordering) -> bool {
            pause();
            self.inner.swap(v, o)
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            ok: Ordering,
            err: Ordering,
        ) -> Result<bool, bool> {
            pause();
            self.inner.compare_exchange(current, new, ok, err)
        }

        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{:?}", self.inner)
        }
    }
}
