//! # kgnet-graph
//!
//! Graph-side substrate of the KGNet reproduction: the heterogeneous graph
//! representation, the RDF→sparse-matrix data transformer of the paper's
//! Fig. 6 (with literal and label-edge removal), train/valid/test splitting
//! (random and community-based) and Table-I-style KG statistics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hetero;
pub mod split;
pub mod stats;
pub mod transform;

pub use hetero::{EdgeTypeId, HeteroGraph, NodeTypeId};
pub use split::{community_split, random_split, Split, SplitRatios, SplitStrategy};
pub use stats::{kg_stats, KgStats};
pub use transform::{
    extract_lp_edges, extract_nc_labels, transform, GmlTask, LpEdges, LpTask, NcLabels, NcTask,
    TransformStats,
};

#[cfg(test)]
mod proptests {
    use crate::split::{community_split, random_split, SplitRatios};
    use proptest::prelude::*;
    use rustc_hash::FxHashSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random splits are exact partitions for any n and seed.
        #[test]
        fn random_split_is_partition(n in 0usize..500, seed in any::<u64>()) {
            let s = random_split(n, SplitRatios::default(), seed);
            prop_assert_eq!(s.len(), n);
            let all: FxHashSet<u32> = s.train.iter().chain(&s.valid).chain(&s.test).copied().collect();
            prop_assert_eq!(all.len(), n);
        }

        /// Community splits are exact partitions and never split a
        /// neighbour-sharing pair across folds.
        #[test]
        fn community_split_is_partition(
            neighbors in proptest::collection::vec(proptest::collection::vec(0u32..20, 0..3), 0..60),
            seed in any::<u64>(),
        ) {
            let s = community_split(&neighbors, SplitRatios::default(), seed);
            prop_assert_eq!(s.len(), neighbors.len());
            let fold_of = |i: u32| -> u8 {
                if s.train.contains(&i) { 0 } else if s.valid.contains(&i) { 1 } else { 2 }
            };
            for (i, nbs_i) in neighbors.iter().enumerate() {
                for (j, nbs_j) in neighbors.iter().enumerate().skip(i + 1) {
                    if nbs_i.iter().any(|n| nbs_j.contains(n)) {
                        prop_assert_eq!(fold_of(i as u32), fold_of(j as u32));
                    }
                }
            }
        }
    }
}
