//! Heterogeneous graph representation produced by the data transformer.
//!
//! Nodes occupy one global contiguous index space (what the GNN embedding
//! table is indexed by); each node carries its type, and edges are grouped
//! by edge type so RGCN-style methods can build one adjacency per relation
//! while GCN-style methods merge them.

use rustc_hash::FxHashMap;

use kgnet_linalg::CsrMatrix;
use kgnet_rdf::TermId;

/// Index of a node type.
pub type NodeTypeId = u16;
/// Index of an edge type.
pub type EdgeTypeId = u16;

/// A heterogeneous directed multigraph over interned RDF nodes.
#[derive(Default)]
pub struct HeteroGraph {
    node_type_names: Vec<String>,
    edge_type_names: Vec<String>,
    /// Global node index -> node type.
    node_type_of: Vec<NodeTypeId>,
    /// Global node index -> originating RDF term.
    node_term: Vec<TermId>,
    node_of_term: FxHashMap<TermId, u32>,
    /// Per edge type: (src, dst) pairs over global node indexes.
    edges: Vec<Vec<(u32, u32)>>,
}

impl HeteroGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a node type name, returning its id.
    pub fn add_node_type(&mut self, name: &str) -> NodeTypeId {
        if let Some(i) = self.node_type_names.iter().position(|n| n == name) {
            return i as NodeTypeId;
        }
        self.node_type_names.push(name.to_owned());
        (self.node_type_names.len() - 1) as NodeTypeId
    }

    /// Intern an edge type name, returning its id.
    pub fn add_edge_type(&mut self, name: &str) -> EdgeTypeId {
        if let Some(i) = self.edge_type_names.iter().position(|n| n == name) {
            return i as EdgeTypeId;
        }
        self.edge_type_names.push(name.to_owned());
        self.edges.push(Vec::new());
        (self.edge_type_names.len() - 1) as EdgeTypeId
    }

    /// Add (or fetch) the node for an RDF term.
    pub fn add_node(&mut self, term: TermId, node_type: NodeTypeId) -> u32 {
        if let Some(&n) = self.node_of_term.get(&term) {
            return n;
        }
        let n = self.node_term.len() as u32;
        self.node_term.push(term);
        self.node_type_of.push(node_type);
        self.node_of_term.insert(term, n);
        n
    }

    /// Add a directed edge of a given type between existing nodes.
    pub fn add_edge(&mut self, edge_type: EdgeTypeId, src: u32, dst: u32) {
        self.edges[edge_type as usize].push((src, dst));
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.node_term.len()
    }

    /// Number of node types.
    pub fn n_node_types(&self) -> usize {
        self.node_type_names.len()
    }

    /// Number of edge types.
    pub fn n_edge_types(&self) -> usize {
        self.edge_type_names.len()
    }

    /// Total number of edges over all types.
    pub fn n_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Name of a node type.
    pub fn node_type_name(&self, t: NodeTypeId) -> &str {
        &self.node_type_names[t as usize]
    }

    /// Name of an edge type.
    pub fn edge_type_name(&self, t: EdgeTypeId) -> &str {
        &self.edge_type_names[t as usize]
    }

    /// Id of a node type by name.
    pub fn node_type_id(&self, name: &str) -> Option<NodeTypeId> {
        self.node_type_names.iter().position(|n| n == name).map(|i| i as NodeTypeId)
    }

    /// Id of an edge type by name.
    pub fn edge_type_id(&self, name: &str) -> Option<EdgeTypeId> {
        self.edge_type_names.iter().position(|n| n == name).map(|i| i as EdgeTypeId)
    }

    /// Type of a node.
    pub fn node_type(&self, node: u32) -> NodeTypeId {
        self.node_type_of[node as usize]
    }

    /// RDF term of a node.
    pub fn term_of(&self, node: u32) -> TermId {
        self.node_term[node as usize]
    }

    /// Node for an RDF term, when present.
    pub fn node_of(&self, term: TermId) -> Option<u32> {
        self.node_of_term.get(&term).copied()
    }

    /// All global node indexes of one type.
    pub fn nodes_of_type(&self, t: NodeTypeId) -> Vec<u32> {
        (0..self.n_nodes() as u32).filter(|&n| self.node_type_of[n as usize] == t).collect()
    }

    /// Edges of one type.
    pub fn edges_of_type(&self, t: EdgeTypeId) -> &[(u32, u32)] {
        &self.edges[t as usize]
    }

    /// All edges flattened across types.
    pub fn merged_edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.n_edges());
        for es in &self.edges {
            out.extend_from_slice(es);
        }
        out
    }

    /// Symmetrically normalised merged adjacency (GCN operator).
    pub fn gcn_adjacency(&self) -> CsrMatrix {
        CsrMatrix::gcn_norm(self.n_nodes(), &self.merged_edges())
    }

    /// Per-relation row-normalised adjacencies; with `add_inverse`, each
    /// relation also contributes its reverse adjacency (standard RGCN
    /// practice).
    pub fn relation_adjacencies(&self, add_inverse: bool) -> Vec<CsrMatrix> {
        let n = self.n_nodes();
        let mut out = Vec::with_capacity(self.edges.len() * if add_inverse { 2 } else { 1 });
        for es in &self.edges {
            out.push(CsrMatrix::row_norm(n, es));
            if add_inverse {
                let rev: Vec<(u32, u32)> = es.iter().map(|&(s, d)| (d, s)).collect();
                out.push(CsrMatrix::row_norm(n, &rev));
            }
        }
        out
    }

    /// Undirected neighbour lists (CSR offsets + flat targets) over the
    /// merged edges; used by samplers.
    pub fn neighbor_lists(&self) -> (Vec<usize>, Vec<u32>) {
        let n = self.n_nodes();
        let mut deg = vec![0usize; n];
        for es in &self.edges {
            for &(s, d) in es {
                deg[s as usize] += 1;
                deg[d as usize] += 1;
            }
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let mut targets = vec![0u32; offsets[n]];
        let mut cursor = offsets.clone();
        for es in &self.edges {
            for &(s, d) in es {
                targets[cursor[s as usize]] = d;
                cursor[s as usize] += 1;
                targets[cursor[d as usize]] = s;
                cursor[d as usize] += 1;
            }
        }
        (offsets, targets)
    }

    /// Approximate size of the adjacency structures in bytes, used by the
    /// method-selection cost model.
    pub fn adjacency_bytes(&self) -> usize {
        self.n_edges() * 8 + self.n_nodes() * 8
    }
}

impl std::fmt::Debug for HeteroGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HeteroGraph(nodes={}, node_types={}, edges={}, edge_types={})",
            self.n_nodes(),
            self.n_node_types(),
            self.n_edges(),
            self.n_edge_types()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> HeteroGraph {
        let mut g = HeteroGraph::new();
        let paper = g.add_node_type("Paper");
        let author = g.add_node_type("Author");
        let wrote = g.add_edge_type("wrote");
        let cites = g.add_edge_type("cites");
        let p0 = g.add_node(TermId(0), paper);
        let p1 = g.add_node(TermId(1), paper);
        let a0 = g.add_node(TermId(2), author);
        g.add_edge(cites, p0, p1);
        g.add_edge(wrote, a0, p0);
        g
    }

    #[test]
    fn interning_types_and_nodes() {
        let mut g = toy();
        assert_eq!(g.add_node_type("Paper"), 0);
        assert_eq!(g.add_node(TermId(0), 0), 0); // existing node
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edge_types(), 2);
        assert_eq!(g.node_type_id("Author"), Some(1));
    }

    #[test]
    fn nodes_of_type_filters() {
        let g = toy();
        assert_eq!(g.nodes_of_type(0), vec![0, 1]);
        assert_eq!(g.nodes_of_type(1), vec![2]);
    }

    #[test]
    fn merged_edges_and_adjacency() {
        let g = toy();
        assert_eq!(g.merged_edges().len(), 2);
        let adj = g.gcn_adjacency();
        assert_eq!(adj.n_rows(), 3);
        // self loops + 2 symmetric edges = 3 + 4 entries.
        assert_eq!(adj.nnz(), 7);
    }

    #[test]
    fn relation_adjacencies_with_inverse() {
        let g = toy();
        let adjs = g.relation_adjacencies(true);
        assert_eq!(adjs.len(), 4);
        // "wrote" forward has edge a0 -> p0.
        let wrote_fwd = &adjs[0];
        assert_eq!(
            wrote_fwd.row(2).0.len() + wrote_fwd.row(0).0.len() + wrote_fwd.row(1).0.len(),
            1
        );
    }

    #[test]
    fn neighbor_lists_symmetric() {
        let g = toy();
        let (off, tgt) = g.neighbor_lists();
        // p0 has neighbours p1 (cites) and a0 (wrote) -> degree 2.
        assert_eq!(off[1] - off[0], 2);
        let nb: Vec<u32> = tgt[off[0]..off[1]].to_vec();
        assert!(nb.contains(&1) && nb.contains(&2));
    }
}
