//! Train/validation/test splits over task targets.
//!
//! The paper's pipeline (Fig. 6) performs "a train-validation-test split
//! using different strategies like random and community-based"; both are
//! implemented here over the target index space.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rustc_hash::FxHashMap;

/// A split of target indexes `0..n` into train/valid/test.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Split {
    /// Training target indexes.
    pub train: Vec<u32>,
    /// Validation target indexes.
    pub valid: Vec<u32>,
    /// Test target indexes.
    pub test: Vec<u32>,
}

impl Split {
    /// Total number of indexes covered.
    pub fn len(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }

    /// True when the split covers nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Split strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplitStrategy {
    /// Uniformly random assignment.
    Random,
    /// Whole communities (connected components of the target co-neighbour
    /// graph) are assigned to the same fold, testing generalisation across
    /// communities.
    Community,
}

/// Fractions for train/valid (test receives the remainder).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitRatios {
    /// Train fraction.
    pub train: f64,
    /// Validation fraction.
    pub valid: f64,
}

impl Default for SplitRatios {
    fn default() -> Self {
        SplitRatios { train: 0.7, valid: 0.1 }
    }
}

/// Random split of `n` targets.
pub fn random_split(n: usize, ratios: SplitRatios, seed: u64) -> Split {
    let mut idx: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_train = (n as f64 * ratios.train).round() as usize;
    let n_valid = (n as f64 * ratios.valid).round() as usize;
    let n_train = n_train.min(n);
    let n_valid = n_valid.min(n - n_train);
    Split {
        train: idx[..n_train].to_vec(),
        valid: idx[n_train..n_train + n_valid].to_vec(),
        test: idx[n_train + n_valid..].to_vec(),
    }
}

/// Community split: targets sharing a graph neighbour belong to the same
/// community (union-find over `target_neighbors`), and whole communities are
/// greedily packed into the fold that is furthest below its quota.
///
/// `target_neighbors[i]` lists opaque neighbour keys of target `i` (e.g.
/// global node ids of its graph neighbours).
pub fn community_split(target_neighbors: &[Vec<u32>], ratios: SplitRatios, seed: u64) -> Split {
    let n = target_neighbors.len();
    let mut uf = UnionFind::new(n);
    let mut owner_of_neighbor: FxHashMap<u32, usize> = FxHashMap::default();
    for (i, nbs) in target_neighbors.iter().enumerate() {
        for &nb in nbs {
            match owner_of_neighbor.get(&nb) {
                Some(&j) => uf.union(i, j),
                None => {
                    owner_of_neighbor.insert(nb, i);
                }
            }
        }
    }
    let mut communities: FxHashMap<usize, Vec<u32>> = FxHashMap::default();
    for i in 0..n {
        communities.entry(uf.find(i)).or_default().push(i as u32);
    }
    let mut groups: Vec<Vec<u32>> = communities.into_values().collect();
    // Deterministic order, then shuffle group order for unbiased packing.
    groups.sort_by_key(|g| g[0]);
    let mut rng = StdRng::seed_from_u64(seed);
    groups.shuffle(&mut rng);

    let quotas = [ratios.train, ratios.valid, 1.0 - ratios.train - ratios.valid];
    let mut folds: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for group in groups {
        // Pick the fold with the largest remaining deficit.
        let (best, _) = quotas
            .iter()
            .enumerate()
            .map(|(f, &q)| {
                let have = folds[f].len() as f64 / n.max(1) as f64;
                (f, q - have)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("three folds");
        folds[best].extend(group);
    }
    let [train, valid, test] = folds;
    Split { train, valid, test }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect() }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustc_hash::FxHashSet;

    #[test]
    fn random_split_partitions_exactly() {
        let s = random_split(100, SplitRatios::default(), 42);
        assert_eq!(s.len(), 100);
        let all: FxHashSet<u32> = s.train.iter().chain(&s.valid).chain(&s.test).copied().collect();
        assert_eq!(all.len(), 100);
        assert_eq!(s.train.len(), 70);
        assert_eq!(s.valid.len(), 10);
        assert_eq!(s.test.len(), 20);
    }

    #[test]
    fn random_split_deterministic_by_seed() {
        assert_eq!(
            random_split(50, SplitRatios::default(), 7),
            random_split(50, SplitRatios::default(), 7)
        );
        assert_ne!(
            random_split(50, SplitRatios::default(), 7),
            random_split(50, SplitRatios::default(), 8)
        );
    }

    #[test]
    fn community_split_keeps_components_together() {
        // Targets 0,1 share neighbour 100; targets 2,3 share 200; 4 alone.
        let neighbors = vec![vec![100], vec![100], vec![200], vec![200], vec![300]];
        let s = community_split(&neighbors, SplitRatios { train: 0.4, valid: 0.2 }, 1);
        assert_eq!(s.len(), 5);
        let fold_of = |i: u32| -> usize {
            if s.train.contains(&i) {
                0
            } else if s.valid.contains(&i) {
                1
            } else {
                2
            }
        };
        assert_eq!(fold_of(0), fold_of(1));
        assert_eq!(fold_of(2), fold_of(3));
    }

    #[test]
    fn community_split_partitions_exactly() {
        let neighbors: Vec<Vec<u32>> = (0..40).map(|i| vec![i / 4]).collect();
        let s = community_split(&neighbors, SplitRatios::default(), 3);
        assert_eq!(s.len(), 40);
        let all: FxHashSet<u32> = s.train.iter().chain(&s.valid).chain(&s.test).copied().collect();
        assert_eq!(all.len(), 40);
        assert!(s.train.len() >= s.test.len());
    }
}
