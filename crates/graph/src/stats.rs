//! Knowledge-graph statistics (Table I of the paper).

use rustc_hash::{FxHashMap, FxHashSet};

use kgnet_rdf::term::RDF_TYPE;
use kgnet_rdf::{RdfStore, Term};

/// Summary statistics of a KG, mirroring Table I's rows.
#[derive(Debug, Clone, PartialEq)]
pub struct KgStats {
    /// Total triples.
    pub n_triples: usize,
    /// Distinct predicates, excluding `rdf:type` (the paper's "#Edge Types").
    pub n_edge_types: usize,
    /// Distinct `rdf:type` objects (the paper's "#Node Types").
    pub n_node_types: usize,
    /// Distinct typed subjects.
    pub n_typed_nodes: usize,
    /// Instances per node type.
    pub nodes_per_type: FxHashMap<String, usize>,
    /// Triples per predicate.
    pub triples_per_predicate: FxHashMap<String, usize>,
    /// Literal-object triples.
    pub n_literal_triples: usize,
}

/// Compute [`KgStats`] over a store.
pub fn kg_stats(store: &RdfStore) -> KgStats {
    let rdf_type = store.lookup(&Term::iri(RDF_TYPE));
    let mut nodes_per_type: FxHashMap<String, usize> = FxHashMap::default();
    let mut triples_per_predicate: FxHashMap<String, usize> = FxHashMap::default();
    let mut typed_nodes: FxHashSet<u32> = FxHashSet::default();
    let mut n_literals = 0usize;
    for (s, p, o) in store.iter() {
        if Some(p) == rdf_type {
            *nodes_per_type.entry(term_name(store, o)).or_default() += 1;
            typed_nodes.insert(s.0);
        } else {
            *triples_per_predicate.entry(term_name(store, p)).or_default() += 1;
        }
        if store.resolve(o).is_literal() {
            n_literals += 1;
        }
    }
    KgStats {
        n_triples: store.len(),
        n_edge_types: triples_per_predicate.len(),
        n_node_types: nodes_per_type.len(),
        n_typed_nodes: typed_nodes.len(),
        nodes_per_type,
        triples_per_predicate,
        n_literal_triples: n_literals,
    }
}

fn term_name(store: &RdfStore, id: kgnet_rdf::TermId) -> String {
    match store.resolve(id) {
        Term::Iri(i) => i.clone(),
        other => other.to_string(),
    }
}

impl KgStats {
    /// Instances of one node type.
    pub fn nodes_of_type(&self, type_iri: &str) -> usize {
        self.nodes_per_type.get(type_iri).copied().unwrap_or(0)
    }

    /// Render a Table-I-style block.
    pub fn to_table(&self, kg_name: &str) -> String {
        format!(
            "Knowledge Graph   {kg_name}\n\
             #Triples          {}\n\
             #Edge Types       {}\n\
             #Node Types       {}\n\
             #Typed Nodes      {}\n\
             #Literal triples  {}\n",
            self.n_triples,
            self.n_edge_types,
            self.n_node_types,
            self.n_typed_nodes,
            self.n_literal_triples,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgnet_rdf::execute;

    #[test]
    fn stats_count_types_and_predicates() {
        let mut st = RdfStore::new();
        execute(
            &mut st,
            r#"PREFIX x: <http://x/>
            INSERT DATA {
              x:a a x:T1 . x:b a x:T1 . x:c a x:T2 .
              x:a x:p x:b . x:a x:q x:c . x:b x:p x:c .
              x:a x:label "A" .
            }"#,
        )
        .unwrap();
        let s = kg_stats(&st);
        assert_eq!(s.n_triples, 7);
        assert_eq!(s.n_node_types, 2);
        assert_eq!(s.n_edge_types, 3); // p, q, label
        assert_eq!(s.n_typed_nodes, 3);
        assert_eq!(s.nodes_of_type("http://x/T1"), 2);
        assert_eq!(s.n_literal_triples, 1);
        assert!(s.to_table("toy").contains("#Triples"));
    }
}
