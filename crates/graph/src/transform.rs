//! The data transformer of the paper's Fig. 6: converts an RDF (sub)graph
//! into the sparse-matrix-ready [`HeteroGraph`], removing literal data and
//! the target class (label) edges, and extracting labels/edge sets for the
//! task at hand.

use rustc_hash::{FxHashMap, FxHashSet};

use kgnet_rdf::term::RDF_TYPE;
use kgnet_rdf::{RdfStore, Term, TermId};

use crate::hetero::HeteroGraph;

/// Node-classification task description (paper: TargetNode + NodeLabel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NcTask {
    /// IRI of the class whose instances are classified (e.g.
    /// `dblp:Publication`).
    pub target_type: String,
    /// IRI of the label edge predicate (e.g. `dblp:publishedIn`).
    pub label_predicate: String,
}

/// Link-prediction task description (paper: SourceNode + DestinationNode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LpTask {
    /// IRI of the source node class (e.g. `dblp:Person`).
    pub source_type: String,
    /// IRI of the predicted edge predicate (e.g. `dblp:affiliatedWith`).
    pub edge_predicate: String,
    /// IRI of the destination node class (e.g. `dblp:Affiliation`).
    pub dest_type: String,
}

/// A GML task, as encoded in SPARQL-ML queries and KGMeta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GmlTask {
    /// Node classification.
    NodeClassification(NcTask),
    /// Link prediction.
    LinkPrediction(LpTask),
    /// Entity similarity over embeddings of a node type.
    EntitySimilarity {
        /// IRI of the node class embedded for similarity search.
        target_type: String,
    },
}

impl GmlTask {
    /// Short task-kind name used in model URIs and KGMeta.
    pub fn kind_name(&self) -> &'static str {
        match self {
            GmlTask::NodeClassification(_) => "NodeClassification",
            GmlTask::LinkPrediction(_) => "LinkPrediction",
            GmlTask::EntitySimilarity { .. } => "EntitySimilarity",
        }
    }

    /// Predicates that must be excluded from the model's input graph
    /// (the label edge for NC, the predicted edge for LP).
    pub fn excluded_predicates(&self) -> Vec<String> {
        match self {
            GmlTask::NodeClassification(t) => vec![t.label_predicate.clone()],
            GmlTask::LinkPrediction(t) => vec![t.edge_predicate.clone()],
            GmlTask::EntitySimilarity { .. } => vec![],
        }
    }
}

/// Labels extracted for node classification.
#[derive(Debug, Clone)]
pub struct NcLabels {
    /// Target nodes (RDF terms) in a stable order.
    pub targets: Vec<TermId>,
    /// Class index per target (into `classes`).
    pub labels: Vec<u32>,
    /// Class terms (e.g. the venue IRIs).
    pub classes: Vec<TermId>,
}

impl NcLabels {
    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }
}

/// Edges extracted for link prediction.
#[derive(Debug, Clone)]
pub struct LpEdges {
    /// (source, destination) term pairs of the predicted edge type.
    pub edges: Vec<(TermId, TermId)>,
    /// All candidate destination terms.
    pub destinations: Vec<TermId>,
}

/// Statistics recorded by the transformer (paper: "generating graph
/// statistics" + consistency validation).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransformStats {
    /// Triples seen in the input store.
    pub triples_in: usize,
    /// Literal-object triples removed.
    pub literals_removed: usize,
    /// Label/target-class edges removed.
    pub label_edges_removed: usize,
    /// `rdf:type` triples consumed as node typing.
    pub type_triples: usize,
    /// Edges kept in the output graph.
    pub edges_out: usize,
}

/// Transform an RDF store into a [`HeteroGraph`], excluding the task's label
/// predicates. Returns the graph and the transformation statistics.
pub fn transform(store: &RdfStore, exclude_predicates: &[String]) -> (HeteroGraph, TransformStats) {
    let mut g = HeteroGraph::new();
    let mut stats = TransformStats { triples_in: store.len(), ..Default::default() };

    let excluded: FxHashSet<TermId> =
        exclude_predicates.iter().filter_map(|p| store.lookup(&Term::iri(p.clone()))).collect();
    let rdf_type = store.lookup(&Term::iri(RDF_TYPE));

    // Pass 1: node types from rdf:type.
    let mut type_of: FxHashMap<TermId, TermId> = FxHashMap::default();
    if let Some(rt) = rdf_type {
        for (s, _, o) in store.matches(None, Some(rt), None) {
            stats.type_triples += 1;
            type_of.entry(s).or_insert(o);
        }
    }

    let unknown = g.add_node_type("kgnet:UntypedNode");
    let node_of = |g: &mut HeteroGraph,
                   type_of: &FxHashMap<TermId, TermId>,
                   store: &RdfStore,
                   t: TermId|
     -> u32 {
        match g.node_of(t) {
            Some(n) => n,
            None => {
                let ty = match type_of.get(&t) {
                    Some(&class) => {
                        let name = store.resolve(class).to_string();
                        g.add_node_type(&name)
                    }
                    None => unknown,
                };
                g.add_node(t, ty)
            }
        }
    };

    // Pass 2: edges.
    for (s, p, o) in store.iter() {
        if Some(p) == rdf_type {
            continue;
        }
        if excluded.contains(&p) {
            stats.label_edges_removed += 1;
            continue;
        }
        if store.resolve(o).is_literal() {
            stats.literals_removed += 1;
            continue;
        }
        let pname = store.resolve(p).to_string();
        let et = g.add_edge_type(&pname);
        let sn = node_of(&mut g, &type_of, store, s);
        let on = node_of(&mut g, &type_of, store, o);
        g.add_edge(et, sn, on);
        stats.edges_out += 1;
    }

    (g, stats)
}

/// Extract node-classification labels from the store (before the label edge
/// is removed by [`transform`]). Targets without a label edge are skipped;
/// targets with several labels keep the first.
pub fn extract_nc_labels(store: &RdfStore, task: &NcTask) -> NcLabels {
    let mut targets = Vec::new();
    let mut labels = Vec::new();
    let mut classes: Vec<TermId> = Vec::new();
    let mut class_index: FxHashMap<TermId, u32> = FxHashMap::default();
    let Some(pred) = store.lookup(&Term::iri(task.label_predicate.clone())) else {
        return NcLabels { targets, labels, classes };
    };
    for subject in store.subjects_of_type(&task.target_type) {
        let found = store.matches(Some(subject), Some(pred), None).first().map(|&(_, _, o)| o);
        let Some(class) = found else { continue };
        let idx = *class_index.entry(class).or_insert_with(|| {
            classes.push(class);
            (classes.len() - 1) as u32
        });
        targets.push(subject);
        labels.push(idx);
    }
    NcLabels { targets, labels, classes }
}

/// Extract link-prediction edges from the store.
pub fn extract_lp_edges(store: &RdfStore, task: &LpTask) -> LpEdges {
    let mut edges = Vec::new();
    let Some(pred) = store.lookup(&Term::iri(task.edge_predicate.clone())) else {
        return LpEdges { edges, destinations: vec![] };
    };
    let sources: FxHashSet<TermId> =
        store.subjects_of_type(&task.source_type).into_iter().collect();
    let mut dest_set: FxHashSet<TermId> = FxHashSet::default();
    for (s, _, o) in store.matches(None, Some(pred), None) {
        if sources.contains(&s) {
            edges.push((s, o));
            dest_set.insert(o);
        }
    }
    // All typed destinations are candidates even if currently unlinked.
    for d in store.subjects_of_type(&task.dest_type) {
        dest_set.insert(d);
    }
    let mut destinations: Vec<TermId> = dest_set.into_iter().collect();
    destinations.sort_unstable();
    LpEdges { edges, destinations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgnet_rdf::execute;

    fn toy_store() -> RdfStore {
        let mut st = RdfStore::new();
        execute(
            &mut st,
            r#"PREFIX x: <http://x/>
            INSERT DATA {
              x:p1 a x:Paper . x:p2 a x:Paper .
              x:v1 a x:Venue . x:v2 a x:Venue .
              x:a1 a x:Author .
              x:p1 x:publishedIn x:v1 .
              x:p2 x:publishedIn x:v2 .
              x:p1 x:cites x:p2 .
              x:p1 x:authoredBy x:a1 .
              x:p1 x:title "Paper 1" .
              x:a1 x:affiliatedWith x:org1 .
            }"#,
        )
        .unwrap();
        st
    }

    #[test]
    fn transform_removes_literals_and_labels() {
        let st = toy_store();
        let (g, stats) = transform(&st, &["http://x/publishedIn".to_owned()]);
        assert_eq!(stats.literals_removed, 1);
        assert_eq!(stats.label_edges_removed, 2);
        assert_eq!(stats.edges_out, 3); // cites, authoredBy, affiliatedWith
        assert!(g.edge_type_id("<http://x/publishedIn>").is_none());
        assert!(g.edge_type_id("<http://x/cites>").is_some());
    }

    #[test]
    fn untyped_nodes_get_placeholder_type() {
        let st = toy_store();
        let (g, _) = transform(&st, &[]);
        // org1 has no rdf:type.
        let org = st.lookup(&Term::iri("http://x/org1")).unwrap();
        let n = g.node_of(org).unwrap();
        assert_eq!(g.node_type_name(g.node_type(n)), "kgnet:UntypedNode");
    }

    #[test]
    fn nc_labels_extracted_in_class_index_space() {
        let st = toy_store();
        let task = NcTask {
            target_type: "http://x/Paper".into(),
            label_predicate: "http://x/publishedIn".into(),
        };
        let labels = extract_nc_labels(&st, &task);
        assert_eq!(labels.targets.len(), 2);
        assert_eq!(labels.n_classes(), 2);
        assert_ne!(labels.labels[0], labels.labels[1]);
    }

    #[test]
    fn lp_edges_extracted_with_candidate_destinations() {
        let st = toy_store();
        let task = LpTask {
            source_type: "http://x/Author".into(),
            edge_predicate: "http://x/affiliatedWith".into(),
            dest_type: "http://x/Org".into(),
        };
        let lp = extract_lp_edges(&st, &task);
        assert_eq!(lp.edges.len(), 1);
        assert_eq!(lp.destinations.len(), 1);
    }

    #[test]
    fn task_excluded_predicates() {
        let t = GmlTask::NodeClassification(NcTask {
            target_type: "T".into(),
            label_predicate: "L".into(),
        });
        assert_eq!(t.excluded_predicates(), vec!["L".to_owned()]);
        assert_eq!(t.kind_name(), "NodeClassification");
    }
}
