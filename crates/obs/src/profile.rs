//! [`SpanNode`]: a span tree for per-query profiles — named timed nodes
//! with row counts and children, assembled from drained [`SpanRecord`]s
//! or built directly by an instrumented executor.

use crate::trace::SpanRecord;

/// One node of a profile tree: a named timed operation, optionally with a
/// row count, containing the operations it invoked.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Operation label (e.g. `scan(?p <authoredBy> ?a)`).
    pub name: String,
    /// Inclusive wall time of this node in nanoseconds (covers children).
    pub nanos: u64,
    /// Rows this operation produced (0 when not applicable).
    pub rows: u64,
    /// Key/value annotations copied from the source [`SpanRecord`]
    /// (request ids, methods — empty for executor-built nodes).
    pub tags: Vec<(String, String)>,
    /// Nested operations, in execution order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// New leaf node.
    pub fn new(name: impl Into<String>, nanos: u64, rows: u64) -> SpanNode {
        SpanNode { name: name.into(), nanos, rows, tags: Vec::new(), children: Vec::new() }
    }

    /// The value of tag `key`, if present.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Total inclusive time of the direct children.
    pub fn child_nanos(&self) -> u64 {
        self.children.iter().map(|c| c.nanos).sum()
    }

    /// Time spent in this node itself, excluding children (saturating:
    /// clock jitter can make children sum slightly past the parent).
    pub fn self_nanos(&self) -> u64 {
        self.nanos.saturating_sub(self.child_nanos())
    }

    /// Rebuild trees from drained span records (children-first order, as
    /// [`crate::Tracer::drain`] returns them). Records whose parent is
    /// not in `records` become roots; roots are returned in drain order.
    pub fn assemble(records: &[SpanRecord]) -> Vec<SpanNode> {
        let known: Vec<u64> = records.iter().map(|r| r.id).collect();
        let mut pending: Vec<(Option<u64>, SpanNode)> = Vec::new();
        let mut roots = Vec::new();
        // Records arrive children-first: by the time a parent appears,
        // every one of its finished children is already pending.
        for r in records {
            let mut node = SpanNode::new(r.name.clone(), r.duration_nanos, 0);
            node.tags = r.tags.clone();
            let mut i = 0;
            while i < pending.len() {
                if pending[i].0 == Some(r.id) {
                    node.children.push(pending.remove(i).1);
                } else {
                    i += 1;
                }
            }
            let parent = r.parent.filter(|p| known.contains(p));
            if parent.is_none() {
                roots.push(node);
            } else {
                pending.push((parent, node));
            }
        }
        // Orphans (parent finished earlier than the ring retained) become
        // roots rather than silently vanishing.
        roots.extend(pending.into_iter().map(|(_, n)| n));
        roots
    }

    /// Render the tree as indented text, one node per line:
    /// `name  <time> (rows)` with children beneath.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let ms = self.nanos as f64 / 1e6;
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.name);
        out.push_str(&format!("  {ms:.3} ms"));
        if self.rows > 0 {
            out.push_str(&format!(" ({} rows)", self.rows));
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    #[test]
    fn assemble_rebuilds_nesting_from_drain_order() {
        let t = Tracer::new(16);
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
                let _leaf = t.span("leaf");
            }
            let _sibling = t.span("sibling");
        }
        let roots = SpanNode::assemble(&t.drain());
        assert_eq!(roots.len(), 1);
        let outer = &roots[0];
        assert_eq!(outer.name, "outer");
        let child_names: Vec<&str> = outer.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(child_names, vec!["inner", "sibling"]);
        assert_eq!(outer.children[0].children[0].name, "leaf");
    }

    #[test]
    fn orphaned_children_surface_as_roots() {
        let records = vec![SpanRecord {
            id: 9,
            parent: Some(1),
            name: "lost-parent".into(),
            start_nanos: 0,
            duration_nanos: 5,
            tags: vec![("request_id".into(), "req-3".into())],
        }];
        let roots = SpanNode::assemble(&records);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "lost-parent");
        assert_eq!(roots[0].tag("request_id"), Some("req-3"));
        assert_eq!(roots[0].tag("missing"), None);
    }

    #[test]
    fn self_time_excludes_children() {
        let mut root = SpanNode::new("root", 100, 0);
        root.children.push(SpanNode::new("a", 30, 10));
        root.children.push(SpanNode::new("b", 50, 0));
        assert_eq!(root.child_nanos(), 80);
        assert_eq!(root.self_nanos(), 20);
        let text = root.render();
        assert!(text.contains("root"));
        assert!(text.contains("(10 rows)"));
        assert!(text.lines().count() == 3);
    }
}
