//! # kgnet-obs
//!
//! The platform's flight recorder: one offline, dependency-free
//! observability layer every subsystem records into and every consumer
//! (benches, the CI drift check, a future `/metrics` endpoint) reads
//! from.
//!
//! Three pieces:
//!
//! - **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) collected in a
//!   [`Registry`] — global ([`Registry::global`]) or injected per
//!   component. Recording is lock-free (relaxed `kgnet-sync` atomics);
//!   histograms are log-bucketed (≤6.25% relative quantile error),
//!   mergeable, and snapshot with coherent totals under concurrent
//!   writers (model-checked).
//! - **Tracing** ([`Tracer`], [`SpanGuard`]) — RAII spans with monotonic
//!   ids and per-thread parent linkage, completing into a bounded ring
//!   buffer drained by subscribers; [`SpanNode::assemble`] rebuilds span
//!   trees from drained records.
//! - **Exporters** — [`Registry::render_prometheus`] (text exposition
//!   format) and [`Registry::render_json`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod profile;
pub mod promcheck;
pub mod registry;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use profile::SpanNode;
pub use promcheck::validate_prometheus;
pub use registry::Registry;
pub use trace::{SpanGuard, SpanRecord, Tracer};
