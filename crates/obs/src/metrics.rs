//! Lock-free metric instruments: [`Counter`], [`Gauge`] and the
//! log-bucketed latency [`Histogram`].
//!
//! Everything in this module is recorded on hot paths — query execution,
//! commit, ANN search — so recording never takes a lock: counters and
//! gauges are single relaxed atomics, and a histogram `record` is five
//! atomic RMWs. `kgnet-lint`'s `obs-hot-path` rule keeps it that way
//! (this file must not name `Mutex`/`RwLock`/`Condvar`).
//!
//! Reading is the interesting part. A histogram snapshot wants *coherent*
//! totals — a `(count, sum, buckets)` triple that some serial execution
//! could actually have produced — without making writers wait. The
//! protocol: `record` brackets its relaxed data updates between an
//! `inflight` increment (Acquire) and decrement (Release); `snapshot`
//! reads `count`, `inflight`, the data, `inflight` again and `count`
//! again, and accepts only when both `inflight` reads were zero and the
//! two `count` reads agree. Any recorder overlapping the read window
//! either shows up in an `inflight` read or bumps `count` between the two
//! reads, so an accepted snapshot has exact totals (`sum(buckets) ==
//! count`, `sum` matches the recorded values). After a bounded number of
//! rejected attempts under sustained write pressure the snapshot is
//! returned best-effort with [`HistogramSnapshot::coherent`] false rather
//! than spinning forever. The `kgnet-check` suite in
//! `crates/obs/tests/model_check.rs` explores this protocol's
//! interleavings exhaustively.

use std::time::Duration;

use kgnet_sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a value that goes up and down (queue depth, retained
/// bytes, current store generation).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (negative to decrement).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` equal sub-buckets, bounding the relative quantile error at
/// `2^-SUB_BITS` (6.25%).
const SUB_BITS: u32 = 4;
const SUBDIVISIONS: usize = 1 << SUB_BITS;

/// Number of buckets: values `0..16` get exact buckets, then 16
/// sub-buckets for each exponent `4..=63`.
pub const N_BUCKETS: usize = SUBDIVISIONS + (64 - SUB_BITS as usize) * SUBDIVISIONS;

/// Bucket index of `v` under log-linear bucketing.
fn bucket_index(v: u64) -> usize {
    if v < SUBDIVISIONS as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = ((v >> (exp - SUB_BITS)) & (SUBDIVISIONS as u64 - 1)) as usize;
        SUBDIVISIONS + (exp - SUB_BITS) as usize * SUBDIVISIONS + sub
    }
}

/// Largest value that lands in bucket `i` (inclusive upper bound).
fn bucket_upper(i: usize) -> u64 {
    if i < SUBDIVISIONS {
        i as u64
    } else {
        let exp = SUB_BITS + ((i - SUBDIVISIONS) / SUBDIVISIONS) as u32;
        let sub = ((i - SUBDIVISIONS) % SUBDIVISIONS) as u64;
        let width = 1u64 << (exp - SUB_BITS);
        (1u64 << exp) + sub * width + (width - 1)
    }
}

/// Attempts before a snapshot gives up on coherence under sustained
/// write pressure and returns best-effort values.
const SNAPSHOT_RETRIES: usize = 16;

/// A mergeable log-bucketed histogram of `u64` samples (typically
/// nanoseconds). Recording is lock-free and wait-free: five atomic RMWs,
/// no CAS loop. Quantile estimates carry at most 6.25% relative error.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Number of `record` calls currently between their first and last
    /// atomic op — the snapshot coherence protocol's write barrier.
    inflight: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one sample. Lock-free; safe from any thread.
    pub fn record(&self, value: u64) {
        self.inflight.fetch_add(1, Ordering::Acquire);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Release);
        self.inflight.fetch_sub(1, Ordering::Release);
    }

    /// Record a duration as nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples (racy point read).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Take a point-in-time snapshot. Retries while recorders are caught
    /// mid-update; an accepted attempt is marked
    /// [`coherent`](HistogramSnapshot::coherent) and has exact totals.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = self.read_once();
        if snap.coherent {
            return snap;
        }
        for _ in 1..SNAPSHOT_RETRIES {
            kgnet_sync::thread::yield_now();
            snap = self.read_once();
            if snap.coherent {
                return snap;
            }
        }
        snap
    }

    /// One snapshot attempt under the coherence protocol described in the
    /// module docs.
    fn read_once(&self) -> HistogramSnapshot {
        let c1 = self.count.load(Ordering::SeqCst);
        let i1 = self.inflight.load(Ordering::SeqCst);
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let i2 = self.inflight.load(Ordering::SeqCst);
        let c2 = self.count.load(Ordering::SeqCst);
        let coherent = i1 == 0 && i2 == 0 && c1 == c2;
        HistogramSnapshot { count: c2, sum, max, coherent, buckets }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).finish_non_exhaustive()
    }
}

/// A point-in-time copy of a [`Histogram`]: totals, max and the full
/// bucket vector. Mergeable, so per-shard or per-run histograms can be
/// combined before quantile estimation.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// True when the snapshot passed the coherence protocol: totals are
    /// exact. False only under sustained concurrent write pressure, where
    /// counts may be off by the number of in-flight recorders.
    pub coherent: bool,
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot (identity for [`merge`](Self::merge)).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot { count: 0, sum: 0, max: 0, coherent: true, buckets: vec![0; N_BUCKETS] }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`). Returns the upper bound of
    /// the bucket holding the rank-`ceil(q·count)` sample, clamped to the
    /// observed max — at most 6.25% above the exact value. Zero when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold `other` into `self` (bucket-wise sum; max of maxes). The
    /// result is coherent only when both inputs were.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.coherent &= other.coherent;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs in
    /// ascending bound order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(i, &c)| (bucket_upper(i), c))
    }

    /// Sum of all bucket counts (equals `count` in a coherent snapshot).
    pub fn bucket_total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_monotone() {
        // Every bucket's upper bound + 1 must be the next bucket's first
        // value, across the exact/log boundary and several exponents.
        for i in 0..N_BUCKETS - 1 {
            let upper = bucket_upper(i);
            assert_eq!(bucket_index(upper), i, "upper bound of bucket {i} maps back");
            if upper < u64::MAX {
                assert_eq!(bucket_index(upper + 1), i + 1, "bucket {i} must abut bucket {}", i + 1);
            }
        }
        assert_eq!(bucket_upper(N_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn bucket_width_bounds_relative_error() {
        for v in [17u64, 100, 999, 12_345, 1 << 40, (1 << 50) + 12_321] {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v);
            assert!(
                (upper - v) as f64 <= v as f64 / 16.0 + 1.0,
                "bucket overestimates {v} by more than 6.25%: {upper}"
            );
        }
    }

    #[test]
    fn quantiles_track_exact_on_known_sample() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.coherent);
        assert_eq!((s.count, s.sum), (1000, 500_500));
        assert_eq!(s.max, 1000);
        for (q, exact) in [(0.5, 500u64), (0.9, 900), (0.99, 990), (1.0, 1000)] {
            let est = s.quantile(q);
            assert!(est >= exact, "p{q} estimate {est} below exact {exact}");
            assert!(
                est as f64 <= exact as f64 * 1.0626,
                "p{q} estimate {est} more than 6.25% above exact {exact}"
            );
        }
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [1u64, 5, 100] {
            a.record(v);
        }
        for v in [2u64, 1000] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!((m.count, m.sum, m.max), (5, 1108, 1000));
        assert_eq!(m.bucket_total(), 5);
        assert!(m.coherent);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.max), (0, 0, 0));
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.nonzero_buckets().next().is_none());
    }
}
