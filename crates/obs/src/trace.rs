//! Structured tracing: RAII span guards with monotonic ids and parent
//! linkage, completing into a bounded in-memory ring buffer.
//!
//! A [`Tracer`] hands out [`SpanGuard`]s; nesting is tracked per thread,
//! so a span opened while another of the same tracer is live on the same
//! thread records that span as its parent. When a guard drops, the
//! finished [`SpanRecord`] is pushed into the tracer's ring buffer
//! (oldest records are evicted at capacity); subscribers drain the ring
//! with [`Tracer::drain`]. Because children drop before their parents,
//! drained records arrive children-first — [`crate::SpanNode::assemble`]
//! rebuilds the tree.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::time::Instant;

use kgnet_sync::atomic::{AtomicU64, Ordering};
use kgnet_sync::profile::SyncSite;
use kgnet_sync::tracked::lock_tracked;
use kgnet_sync::Mutex;

/// Contention site for all tracer rings (every request thread pushes its
/// finished spans through one of these locks).
static TRACE_RING_SITE: SyncSite = SyncSite::new("obs.trace_ring");

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Monotonic id, unique within the tracer.
    pub id: u64,
    /// Id of the span that was live on the same thread when this one
    /// opened, if any.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Nanoseconds from the tracer's creation to this span's open.
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub duration_nanos: u64,
    /// Key/value annotations attached while the span was open (request
    /// ids, methods, paths — whatever identifies this execution).
    pub tags: Vec<(String, String)>,
}

// Each tracer gets a process-unique id so the per-thread span stack can
// hold spans of several tracers without cross-linking their parents.
static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of (tracer id, span id) for the spans currently open on this
    /// thread, innermost last.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// A span source plus the bounded ring buffer its finished spans land in.
pub struct Tracer {
    tracer_id: u64,
    next_span_id: AtomicU64,
    epoch: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
    /// Spans evicted unread because the ring was full. Without this a
    /// saturated ring reads as a quiet system.
    dropped: AtomicU64,
}

impl Tracer {
    /// New tracer whose ring retains at most `capacity` finished spans.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            tracer_id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            next_span_id: AtomicU64::new(1),
            epoch: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Open a span. The returned guard records the span into the ring
    /// when dropped; spans opened on the same thread while it is live get
    /// it as their parent.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard<'_> {
        let id = self.next_span_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.iter().rev().find(|&&(t, _)| t == self.tracer_id).map(|&(_, s)| s);
            stack.push((self.tracer_id, id));
            parent
        });
        SpanGuard {
            tracer: self,
            id,
            parent,
            name: name.into(),
            start_nanos: duration_nanos_since(self.epoch),
            start: Instant::now(),
            tags: Vec::new(),
        }
    }

    /// Drain every buffered record, oldest first.
    pub fn drain(&self) -> Vec<SpanRecord> {
        lock_tracked(&self.ring, &TRACE_RING_SITE).drain(..).collect()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        lock_tracked(&self.ring, &TRACE_RING_SITE).len()
    }

    /// True when no record is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity (oldest records are evicted beyond it).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total spans evicted unread because the ring was at capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn push(&self, record: SpanRecord) {
        let mut ring = lock_tracked(&self.ring, &TRACE_RING_SITE);
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.capacity)
            .field("buffered", &self.len())
            .finish_non_exhaustive()
    }
}

fn duration_nanos_since(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// RAII guard for an open span: records the finished span on drop.
#[must_use = "a span measures until the guard drops — binding to `_` closes it immediately"]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    id: u64,
    parent: Option<u64>,
    name: String,
    start_nanos: u64,
    start: Instant,
    tags: Vec<(String, String)>,
}

impl SpanGuard<'_> {
    /// This span's id (usable as a parent reference in diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach a key/value annotation; it rides the finished
    /// [`SpanRecord`] into the ring (and, via
    /// [`crate::SpanNode::assemble`], onto the profile tree).
    pub fn tag(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.tags.push((key.into(), value.into()));
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Normally the top of the stack; a guard moved across threads
            // or dropped out of order is removed wherever it sits.
            if let Some(at) =
                stack.iter().rposition(|&(t, s)| t == self.tracer.tracer_id && s == self.id)
            {
                stack.remove(at);
            }
        });
        self.tracer.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_nanos: self.start_nanos,
            duration_nanos: duration_nanos_since(self.start),
            tags: std::mem::take(&mut self.tags),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_link_parents_and_drop_children_first() {
        let t = Tracer::new(16);
        {
            let outer = t.span("outer");
            let outer_id = outer.id();
            {
                let inner = t.span("inner");
                assert_ne!(inner.id(), outer_id);
                let _leaf = t.span("leaf");
            }
            let _sibling = t.span("sibling");
        }
        let records = t.drain();
        let names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
        // Drop order: leaf, inner, sibling, outer.
        assert_eq!(names, vec!["leaf", "inner", "sibling", "outer"]);
        let by_name = |n: &str| records.iter().find(|r| r.name == n).unwrap();
        let outer = by_name("outer");
        assert_eq!(outer.parent, None);
        assert_eq!(by_name("inner").parent, Some(outer.id));
        assert_eq!(by_name("leaf").parent, Some(by_name("inner").id));
        assert_eq!(by_name("sibling").parent, Some(outer.id));
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let t = Tracer::new(3);
        for i in 0..5 {
            let _s = t.span(format!("s{i}"));
        }
        assert_eq!(t.len(), 3);
        let names: Vec<String> = t.drain().into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["s2", "s3", "s4"]);
        assert!(t.is_empty());
    }

    #[test]
    fn evictions_count_as_dropped_spans() {
        let t = Tracer::new(3);
        assert_eq!(t.dropped(), 0);
        for i in 0..5 {
            let _s = t.span(format!("s{i}"));
        }
        assert_eq!(t.dropped(), 2, "two spans fell off a 3-slot ring");
        // Draining frees the ring; new spans fit again without drops.
        t.drain();
        let _s = t.span("after-drain");
        drop(_s);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn span_ids_are_monotonic_and_drain_empties() {
        let t = Tracer::new(8);
        {
            let a = t.span("a");
            let b = t.span("b");
            assert!(b.id() > a.id());
        }
        assert_eq!(t.drain().len(), 2);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn two_tracers_on_one_thread_do_not_cross_link() {
        let (t1, t2) = (Tracer::new(8), Tracer::new(8));
        {
            let _a = t1.span("t1-outer");
            let b = t2.span("t2-root");
            // t2's span must not adopt t1's span as parent.
            drop(b);
        }
        assert_eq!(t2.drain()[0].parent, None);
        let t1_records = t1.drain();
        assert_eq!(t1_records[0].parent, None);
    }

    #[test]
    fn tags_ride_the_finished_record() {
        let t = Tracer::new(4);
        {
            let mut s = t.span("tagged");
            s.tag("request_id", "req-7");
            s.tag("method", "GET");
        }
        let records = t.drain();
        assert_eq!(
            records[0].tags,
            vec![
                ("request_id".to_owned(), "req-7".to_owned()),
                ("method".to_owned(), "GET".to_owned())
            ]
        );
    }

    #[test]
    fn parents_survive_interleaved_tracers() {
        let (t1, t2) = (Tracer::new(8), Tracer::new(8));
        let outer = t1.span("outer");
        let outer_id = outer.id();
        let _other = t2.span("other");
        let inner = t1.span("inner");
        assert_ne!(inner.id(), outer_id);
        drop(inner);
        drop(outer);
        let records = t1.drain();
        assert_eq!(records[0].name, "inner");
        assert_eq!(records[0].parent, Some(outer_id));
    }
}
