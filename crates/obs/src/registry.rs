//! The metric [`Registry`]: a named catalog of counters, gauges and
//! histograms, with Prometheus-text and JSON exporters.
//!
//! Registration is get-or-create and happens once per metric at
//! subsystem construction time; the returned `Arc` handles are what hot
//! paths record through, so the registry's lock is never on a hot path.
//! Renders walk the catalog in registration order, which makes the output
//! stable across runs — the CI `metrics-drift` check relies on that.

use kgnet_sync::{Arc, RwLock};

use crate::metrics::{Counter, Gauge, Histogram};

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    help: String,
    instrument: Instrument,
}

/// A registry of named metrics. Cheap to share (`Arc<Registry>`), cheap to
/// read handles out of, and renderable as Prometheus text or JSON.
#[derive(Default)]
pub struct Registry {
    entries: RwLock<Vec<Entry>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-global registry, for code without an injected one.
    pub fn global() -> &'static Registry {
        static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            || Instrument::Counter(Arc::new(Counter::new())),
            |e| match e {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            || Instrument::Gauge(Arc::new(Gauge::new())),
            |e| match e {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Get or register the histogram `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            help,
            || Instrument::Histogram(Arc::new(Histogram::new())),
            |e| match e {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        make: impl FnOnce() -> Instrument,
        as_kind: impl Fn(&Instrument) -> Option<T>,
    ) -> T {
        let mut entries = self.entries.write();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            return as_kind(&e.instrument).unwrap_or_else(|| {
                panic!("metric `{name}` already registered as a {}", e.instrument.kind())
            });
        }
        let instrument = make();
        let out = as_kind(&instrument).expect("freshly made instrument matches its own kind");
        entries.push(Entry { name: name.to_owned(), help: help.to_owned(), instrument });
        out
    }

    /// Registered metric names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.entries.read().iter().map(|e| e.name.clone()).collect()
    }

    /// Render every metric in the Prometheus text exposition format:
    /// `# HELP` / `# TYPE` headers, cumulative `_bucket{le="..."}` series
    /// plus `_sum`/`_count` for histograms. Only non-empty buckets are
    /// emitted (plus the mandatory `+Inf`), keeping the output compact.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for e in self.entries.read().iter() {
            let (name, help) = (&e.name, &e.help);
            match &e.instrument {
                Instrument::Counter(c) => {
                    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
                    out.push_str(&format!("{name} {}\n", c.get()));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
                    out.push_str(&format!("{name} {}\n", g.get()));
                }
                Instrument::Histogram(h) => {
                    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
                    let s = h.snapshot();
                    let mut cumulative = 0u64;
                    for (le, count) in s.nonzero_buckets() {
                        cumulative += count;
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", s.count));
                    out.push_str(&format!("{name}_sum {}\n", s.sum));
                    out.push_str(&format!("{name}_count {}\n", s.count));
                }
            }
        }
        out
    }

    /// Render every metric as one JSON object. Counters and gauges map to
    /// numbers; histograms to `{count, sum, max, p50, p90, p99, mean}`.
    pub fn render_json(&self) -> String {
        let mut parts = Vec::new();
        for e in self.entries.read().iter() {
            let name = json_escape(&e.name);
            match &e.instrument {
                Instrument::Counter(c) => parts.push(format!("\"{name}\": {}", c.get())),
                Instrument::Gauge(g) => parts.push(format!("\"{name}\": {}", g.get())),
                Instrument::Histogram(h) => {
                    let s = h.snapshot();
                    parts.push(format!(
                        "\"{name}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \
                         \"p90\": {}, \"p99\": {}, \"mean\": {:.3}}}",
                        s.count,
                        s.sum,
                        s.max,
                        s.quantile(0.50),
                        s.quantile(0.90),
                        s.quantile(0.99),
                        s.mean(),
                    ));
                }
            }
        }
        format!("{{{}}}", parts.join(", "))
    }
}

/// Escape a string for inclusion in a JSON string literal. Metric names
/// are plain `[a-z0-9_]`, but the exporter must not emit malformed JSON
/// for any input.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let r = Registry::new();
        let a = r.counter("hits_total", "hits");
        let b = r.counter("hits_total", "hits");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.names(), vec!["hits_total"]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x", "");
        r.gauge("x", "");
    }

    #[test]
    fn prometheus_render_has_headers_and_cumulative_buckets() {
        let r = Registry::new();
        r.counter("reqs_total", "requests served").add(7);
        r.gauge("depth", "queue depth").set(-2);
        let h = r.histogram("lat_nanos", "latency");
        h.record(3);
        h.record(3);
        h.record(100);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP reqs_total requests served\n"));
        assert!(text.contains("# TYPE reqs_total counter\nreqs_total 7\n"));
        assert!(text.contains("# TYPE depth gauge\ndepth -2\n"));
        assert!(text.contains("# TYPE lat_nanos histogram\n"));
        assert!(text.contains("lat_nanos_bucket{le=\"3\"} 2\n"));
        // The 100 bucket is cumulative over the 3s.
        assert!(text.contains("} 3\n"));
        assert!(text.contains("lat_nanos_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_nanos_sum 106\n"));
        assert!(text.contains("lat_nanos_count 3\n"));
    }

    #[test]
    fn json_render_is_one_object() {
        let r = Registry::new();
        r.counter("a_total", "").inc();
        r.histogram("h_nanos", "").record(5);
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a_total\": 1"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"p99\": 5"));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = Registry::global().counter("kgnet_obs_test_global_total", "test");
        a.inc();
        let b = Registry::global().counter("kgnet_obs_test_global_total", "test");
        assert!(b.get() >= 1);
    }
}
