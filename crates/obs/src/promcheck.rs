//! Structural validation of a Prometheus text exposition.
//!
//! One parser shared by every consumer that gates on the exposition
//! format: the CI `metrics_drift` binary validates the in-process render
//! *and* the body scraped over the `kgnet-http` frontend, and the HTTP
//! integration tests reuse it so a wire body is held to exactly the same
//! rules. The checks are structural, not value-level: every sample needs
//! a preceding `# TYPE` of a known kind, histogram buckets must be
//! cumulative, and the `+Inf` bucket must agree with `_count`.

use std::collections::HashMap;

/// Parse and structurally validate a Prometheus text exposition. Returns
/// the declared `# TYPE` kinds by metric name, or every violation found.
pub fn validate_prometheus(text: &str) -> Result<HashMap<String, String>, Vec<String>> {
    let mut kinds: HashMap<String, String> = HashMap::new();
    let mut errors = Vec::new();
    // Histogram bookkeeping: cumulative bucket counts must be
    // non-decreasing and the +Inf bucket must equal `_count`.
    let mut last_bucket: HashMap<String, u64> = HashMap::new();
    let mut inf_bucket: HashMap<String, u64> = HashMap::new();
    let mut hist_count: HashMap<String, u64> = HashMap::new();

    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next()) {
                (Some(name), Some(kind)) if ["counter", "gauge", "histogram"].contains(&kind) => {
                    if kinds.insert(name.to_owned(), kind.to_owned()).is_some() {
                        errors.push(format!("line {lineno}: duplicate TYPE for {name}"));
                    }
                }
                _ => errors.push(format!("line {lineno}: malformed TYPE line: {line}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: `name value` or `name{labels} value`.
        let Some((series, value)) = line.rsplit_once(' ') else {
            errors.push(format!("line {lineno}: sample without value: {line}"));
            continue;
        };
        if value.parse::<f64>().is_err() {
            errors.push(format!("line {lineno}: non-numeric value {value:?}"));
            continue;
        }
        let name = series.split('{').next().unwrap_or(series);
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| kinds.get(*b).map(String::as_str) == Some("histogram"));
        let declared = base.unwrap_or(name);
        if !kinds.contains_key(declared) {
            errors.push(format!("line {lineno}: sample {name} has no preceding TYPE"));
            continue;
        }
        if let Some(base) = base {
            if name.ends_with("_bucket") {
                let count: u64 = match value.parse() {
                    Ok(c) => c,
                    Err(_) => {
                        errors.push(format!("line {lineno}: non-integer bucket count {value:?}"));
                        continue;
                    }
                };
                let prev = last_bucket.insert(base.to_owned(), count).unwrap_or(0);
                if count < prev {
                    errors.push(format!(
                        "line {lineno}: {base} cumulative buckets decreased ({prev} -> {count})"
                    ));
                }
                if series.contains("le=\"+Inf\"") {
                    inf_bucket.insert(base.to_owned(), count);
                }
            } else if name.ends_with("_count") {
                hist_count.insert(base.to_owned(), value.parse().unwrap_or(u64::MAX));
            }
        }
    }
    for (name, kind) in &kinds {
        if kind == "histogram" {
            match (inf_bucket.get(name), hist_count.get(name)) {
                (Some(inf), Some(count)) if inf != count => errors
                    .push(format!("{name}: +Inf bucket {inf} disagrees with {name}_count {count}")),
                (None, _) => errors.push(format!("{name}: histogram without a +Inf bucket")),
                (_, None) => errors.push(format!("{name}: histogram without a _count sample")),
                _ => {}
            }
        }
    }
    if errors.is_empty() {
        Ok(kinds)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn registry_render_passes_validation() {
        let r = Registry::new();
        r.counter("a_total", "a").add(3);
        r.gauge("depth", "d").set(-1);
        let h = r.histogram("lat_nanos", "l");
        h.record(5);
        h.record(500);
        let kinds = validate_prometheus(&r.render_prometheus()).expect("valid exposition");
        assert_eq!(kinds.get("a_total").map(String::as_str), Some("counter"));
        assert_eq!(kinds.get("lat_nanos").map(String::as_str), Some("histogram"));
    }

    #[test]
    fn violations_are_reported_line_by_line() {
        let bad = "# TYPE x counter\nx not-a-number\ny_orphan 3\n";
        let errors = validate_prometheus(bad).unwrap_err();
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors[0].contains("non-numeric"));
        assert!(errors[1].contains("no preceding TYPE"));
    }

    #[test]
    fn histogram_invariants_are_enforced() {
        let decreasing = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                          h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        let errors = validate_prometheus(decreasing).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("cumulative buckets decreased")), "{errors:?}");

        let disagreeing = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n";
        let errors = validate_prometheus(disagreeing).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("disagrees")), "{errors:?}");

        let no_inf = "# TYPE h histogram\nh_sum 9\nh_count 5\n";
        let errors = validate_prometheus(no_inf).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("without a +Inf bucket")), "{errors:?}");
    }
}
