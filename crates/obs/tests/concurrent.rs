//! Concurrency suite for the metric instruments: totals must be exact —
//! bit-stable across pool sizes — because every recording op is an atomic
//! RMW, and quantile estimates must track exact quantiles on random
//! samples regardless of recording interleaving.
//!
//! Run under `RAYON_NUM_THREADS=1` and `=4` (CI does both): results must
//! be identical.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use kgnet_obs::{Counter, Gauge, Histogram, Registry};

#[test]
fn concurrent_recording_totals_are_exact() {
    let h = Histogram::new();
    let c = Counter::new();
    let g = Gauge::new();
    // 8 workers × 1000 samples each, values derived from the index so the
    // expected totals are closed-form and pool-size independent.
    (0..8_000usize).into_par_iter().for_each(|i| {
        h.record(i as u64 % 97);
        c.inc();
        g.add(if i % 2 == 0 { 1 } else { -1 });
    });
    let s = h.snapshot();
    assert!(s.coherent, "no recorder is live after the parallel loop");
    assert_eq!(s.count, 8_000);
    let expected_sum: u64 = (0..8_000u64).map(|i| i % 97).sum();
    assert_eq!(s.sum, expected_sum);
    assert_eq!(s.bucket_total(), 8_000);
    assert_eq!(s.max, 96);
    assert_eq!(c.get(), 8_000);
    assert_eq!(g.get(), 0);
}

#[test]
fn quantile_estimates_track_exact_on_random_samples() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for trial in 0..5 {
        let n = 2_000 + trial * 500;
        let mut values: Vec<u64> = (0..n).map(|_| rng.gen_range(1..5_000_000u64)).collect();
        let h = Histogram::new();
        values.par_iter().for_each(|&v| h.record(v));
        values.sort_unstable();
        let s = h.snapshot();
        assert_eq!(s.count as usize, n);
        for q in [0.5, 0.9, 0.99] {
            let exact = values[(((q * n as f64).ceil() as usize).clamp(1, n)) - 1];
            let est = s.quantile(q);
            assert!(est >= exact, "trial {trial} p{q}: estimate {est} below exact {exact}");
            let rel = (est - exact) as f64 / exact as f64;
            assert!(rel <= 0.0625, "trial {trial} p{q}: relative error {rel} exceeds bucket width");
        }
        assert_eq!(s.quantile(1.0), *values.last().unwrap());
    }
}

#[test]
fn registry_render_under_concurrent_recording_is_well_formed() {
    let r = Registry::new();
    let h = r.histogram("kgnet_test_lat_nanos", "latency");
    let c = r.counter("kgnet_test_ops_total", "ops");
    // Render while writers hammer the instruments: output must stay
    // structurally valid even when a snapshot falls back to best-effort.
    let renders: Vec<String> = (0..64usize)
        .into_par_iter()
        .map(|i| {
            for k in 0..100u64 {
                h.record(i as u64 * 100 + k);
                c.inc();
            }
            r.render_prometheus()
        })
        .collect();
    for text in &renders {
        let mut last_cumulative = 0u64;
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.split_once(' ').expect("sample line is `name value`");
            assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "malformed line: {line}");
            if name.starts_with("kgnet_test_lat_nanos_bucket") && !name.contains("+Inf") {
                let v: u64 = value.parse().unwrap();
                assert!(v >= last_cumulative, "bucket series must be cumulative");
                last_cumulative = v;
            }
        }
    }
    // Quiescent state: totals exact.
    let s = h.snapshot();
    assert!(s.coherent);
    assert_eq!(s.count, 6_400);
    assert_eq!(c.get(), 6_400);
}
