//! Deterministic model-check suite for the histogram snapshot coherence
//! protocol: a registry snapshot racing concurrent recorders never
//! observes torn totals.
//!
//! Compiled only under `--cfg kgnet_check`, where the `kgnet-sync` facade
//! routes every atomic inside [`Histogram`] to the `kgnet-check`
//! scheduler — so `explore` drives the *production* record/snapshot code
//! through distinct interleavings, failing with a replayable schedule on
//! any accepted-but-torn snapshot. Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg kgnet_check" cargo test -p kgnet-obs --test model_check
//! ```
//!
//! Budgets come from `kgnet_check::Config::default()` and can be capped in
//! CI via `KGNET_CHECK_MAX_SCHEDULES` / `KGNET_CHECK_RANDOM_ITERS`; the
//! coverage floors below only apply when no cap is set.

#![cfg(kgnet_check)]

use std::sync::Arc;

use kgnet_check::{explore, Config, Report};
use kgnet_obs::Histogram;
use kgnet_sync::thread;

/// A histogram snapshot touches ~1000 atomics per attempt, so each
/// schedule is long; a tighter schedule budget than the lock-centric
/// suites keeps the test fast while the preemption bound still forces the
/// adversarial placements (a recorder paused mid-update inside the
/// snapshot's read window).
fn cfg() -> Config {
    Config {
        preemption_bound: Some(2),
        max_schedules: 3_000,
        random_iters: 3_000,
        ..Config::default()
    }
}

fn assert_coverage(suite: &str, reports: &[Report], floor: usize) {
    let distinct: usize = reports.iter().map(|r| r.distinct_schedules).sum();
    let runs: usize = reports.iter().map(|r| r.schedules).sum();
    println!("model-check[{suite}]: {runs} schedules run, {distinct} distinct");
    let capped = std::env::var_os("KGNET_CHECK_MAX_SCHEDULES").is_some()
        || std::env::var_os("KGNET_CHECK_RANDOM_ITERS").is_some();
    if !capped {
        assert!(distinct >= floor, "{suite}: only {distinct} distinct schedules (floor {floor})");
    }
}

/// Two recorders with distinguishable values race one snapshotter. Every
/// snapshot the protocol *accepts* (`coherent == true`) must be a state
/// some serial execution produces: count, sum and the bucket total agree,
/// and (count, sum) is one of the four achievable prefixes.
#[test]
fn accepted_snapshots_are_never_torn() {
    const A: u64 = 1;
    const B: u64 = 3;
    let report = explore(&cfg(), || {
        let h = Arc::new(Histogram::new());
        let recorders: Vec<_> = [A, B]
            .into_iter()
            .map(|v| {
                let h = h.clone();
                thread::spawn(move || h.record(v))
            })
            .collect();

        let snap = {
            let h = h.clone();
            thread::spawn(move || h.snapshot()).join().unwrap()
        };
        if snap.coherent {
            let ok = matches!(
                (snap.count, snap.sum),
                (0, 0) | (1, A) | (1, B) | (2, _) if snap.count != 2 || snap.sum == A + B
            );
            assert!(ok, "torn accepted snapshot: count={} sum={}", snap.count, snap.sum);
            assert_eq!(
                snap.bucket_total(),
                snap.count,
                "accepted snapshot's buckets disagree with its count"
            );
            assert_eq!(snap.max == 0, snap.count == 0, "max torn against count");
        }

        for r in recorders {
            r.join().unwrap();
        }
        // Quiescent: the final snapshot is always coherent and exact.
        let end = h.snapshot();
        assert!(end.coherent, "quiescent snapshot must be accepted on the first attempt");
        assert_eq!((end.count, end.sum, end.max), (2, A + B, B));
        assert_eq!(end.bucket_total(), 2);
    });
    assert_coverage("obs-snapshot-coherence", &[report], 50);
}

/// Concurrent recorders alone (no snapshot in flight) always leave exact
/// totals behind: recording is pure atomic RMWs, so no interleaving can
/// lose an update.
#[test]
fn concurrent_recording_never_loses_updates() {
    let report = explore(&cfg(), || {
        let h = Arc::new(Histogram::new());
        let workers: Vec<_> = (0..3u64)
            .map(|v| {
                let h = h.clone();
                thread::spawn(move || h.record(v + 1))
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let s = h.snapshot();
        assert!(s.coherent);
        assert_eq!((s.count, s.sum, s.max), (3, 6, 3));
        assert_eq!(s.bucket_total(), 3);
    });
    assert_coverage("obs-recording-exact", &[report], 50);
}
