//! # kgnet-core
//!
//! The KGNet platform facade: an RDF engine, the GMLaaS services and the
//! SPARQL-ML layer wired together behind one handle, mirroring the paper's
//! Fig. 3 deployment (RDF engine + GML-as-a-service + SPARQL-ML-as-a-
//! service).
//!
//! ```
//! use kgnet_core::KgNet;
//! use kgnet_datagen::{generate_dblp, DblpConfig};
//!
//! let (kg, _) = generate_dblp(&DblpConfig::tiny(1));
//! let platform = KgNet::with_graph(kg);
//! let result = platform
//!     .sparql("PREFIX dblp: <https://www.dblp.org/> \
//!              SELECT (COUNT(*) AS ?n) WHERE { ?p a dblp:Publication }")
//!     .unwrap();
//! assert_eq!(result.rows[0][0].as_ref().unwrap().as_int(), Some(60));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use kgnet_gml::config::{GmlMethodKind, GnnConfig};
pub use kgnet_gmlaas::{Priority, TaskBudget};
pub use kgnet_graph::{GmlTask, KgStats, LpTask, NcTask};
pub use kgnet_rdf::{QueryResult, RdfStore, Term};
pub use kgnet_sampler::SamplingScope;
pub use kgnet_sparqlml::{ManagerConfig, MlError, MlOutcome, QueryManager, TrainedSummary};

use kgnet_rdf::sparql::eval::evaluate_select;
use kgnet_rdf::SparqlError;

/// The assembled KGNet platform: one data KG, one KGMeta graph, one model
/// registry and inference service, driven through SPARQL-ML.
pub struct KgNet {
    data: RdfStore,
    manager: QueryManager,
}

impl Default for KgNet {
    fn default() -> Self {
        Self::new()
    }
}

impl KgNet {
    /// Empty platform with default configuration.
    pub fn new() -> Self {
        KgNet { data: RdfStore::new(), manager: QueryManager::default() }
    }

    /// Platform with custom manager configuration (training defaults,
    /// inference-time bound, dictionary cap).
    pub fn with_config(config: ManagerConfig) -> Self {
        KgNet { data: RdfStore::new(), manager: QueryManager::new(config) }
    }

    /// Platform pre-loaded with a knowledge graph.
    pub fn with_graph(data: RdfStore) -> Self {
        KgNet { data, manager: QueryManager::default() }
    }

    /// Platform with both a graph and a configuration.
    pub fn with_graph_and_config(data: RdfStore, config: ManagerConfig) -> Self {
        KgNet { data, manager: QueryManager::new(config) }
    }

    /// Replace the loaded knowledge graph.
    pub fn load_graph(&mut self, data: RdfStore) {
        self.data = data;
    }

    /// Read access to the data KG.
    pub fn data(&self) -> &RdfStore {
        &self.data
    }

    /// Write access to the data KG (bulk loading, manual asserts).
    pub fn data_mut(&mut self) -> &mut RdfStore {
        &mut self.data
    }

    /// The SPARQL-ML query manager.
    pub fn manager(&self) -> &QueryManager {
        &self.manager
    }

    /// Execute any SPARQL-ML operation (SELECT with user-defined
    /// predicates, `TrainGML` INSERT, model DELETE, or plain SPARQL).
    pub fn execute(&mut self, query: &str) -> Result<MlOutcome, MlError> {
        self.manager.execute(&mut self.data, query)
    }

    /// Execute a read-only SELECT (plain or SPARQL-ML) through shared
    /// borrows: the concurrency-friendly path, usable from `&KgNet`. Write
    /// operations are rejected with [`MlError::ReadOnly`]; for a platform
    /// serving many threads at once, see the `kgnet-server` crate.
    pub fn query(&self, query: &str) -> Result<MlOutcome, MlError> {
        self.manager.query(&self.data, query)
    }

    /// Execute a plain SPARQL SELECT and return its rows.
    pub fn sparql(&self, query: &str) -> Result<QueryResult, MlError> {
        match self.query(query)? {
            MlOutcome::Rows(rows) => Ok(rows),
            other => {
                Err(MlError::Sparql(SparqlError::eval(format!("expected rows, got {other:?}"))))
            }
        }
    }

    /// Query the KGMeta metadata graph with plain SPARQL.
    pub fn sparql_kgmeta(&self, query: &str) -> Result<QueryResult, SparqlError> {
        let q = kgnet_rdf::sparql::parse_select(query)?;
        evaluate_select(self.manager.kgmeta().store(), &q)
    }

    /// Optimize + rewrite an ML SELECT without executing it (the candidate
    /// SPARQL of Figs. 11/12 plus the chosen plans).
    pub fn explain(&self, query: &str) -> Result<kgnet_sparqlml::RewrittenQuery, MlError> {
        self.manager.explain(&self.data, query)
    }

    /// Table-I-style statistics of the loaded KG.
    pub fn stats(&self) -> KgStats {
        kgnet_graph::kg_stats(&self.data)
    }

    /// Number of HTTP-style inference calls since the last reset.
    pub fn inference_calls(&self) -> usize {
        self.manager.service().stats().calls
    }

    /// Reset the inference-call counters.
    pub fn reset_inference_stats(&self) {
        self.manager.service().reset_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgnet_datagen::{generate_dblp, DblpConfig};

    fn fast_platform(seed: u64) -> KgNet {
        let (kg, _) = generate_dblp(&DblpConfig::tiny(seed));
        let config = ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() };
        KgNet::with_graph_and_config(kg, config)
    }

    #[test]
    fn stats_reflect_loaded_graph() {
        let platform = fast_platform(3);
        let stats = platform.stats();
        assert!(stats.n_triples > 0);
        assert_eq!(stats.nodes_of_type("https://www.dblp.org/Publication"), 60);
    }

    #[test]
    fn full_lifecycle_train_query_inspect_delete() {
        let mut platform = fast_platform(5);
        // Train.
        let out = platform
            .execute(
                r#"PREFIX dblp: <https://www.dblp.org/>
                   PREFIX kgnet: <https://www.kgnet.com/>
                   INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                     {Name: 'pv', GML-Task:{ TaskType: kgnet:NodeClassifier,
                        TargetNode: dblp:Publication, NodeLabel: dblp:publishedIn},
                      Method: 'GCN'})}"#,
            )
            .unwrap();
        let MlOutcome::Trained(summary) = out else { panic!("expected trained") };

        // KGMeta is queryable with plain SPARQL.
        let meta = platform
            .sparql_kgmeta(
                "PREFIX kgnet: <https://www.kgnet.com/>
                 SELECT ?m ?acc WHERE { ?m a kgnet:NodeClassifier . ?m kgnet:ModelAccuracy ?acc }",
            )
            .unwrap();
        assert_eq!(meta.len(), 1);
        assert_eq!(meta.rows[0][0].as_ref().unwrap().as_iri(), Some(summary.model_uri.as_str()));

        // Query through the model.
        let rows = platform
            .sparql(
                r#"PREFIX dblp: <https://www.dblp.org/>
                   PREFIX kgnet: <https://www.kgnet.com/>
                   SELECT ?paper ?venue WHERE {
                     ?paper a dblp:Publication .
                     ?paper ?NC ?venue .
                     ?NC a kgnet:NodeClassifier .
                     ?NC kgnet:TargetNode dblp:Publication .
                     ?NC kgnet:NodeLabel dblp:publishedIn . }"#,
            )
            .unwrap();
        assert_eq!(rows.len(), 60);
        assert_eq!(platform.inference_calls(), 1); // dictionary plan

        // Delete.
        let out = platform
            .execute(
                r#"PREFIX dblp: <https://www.dblp.org/>
                   PREFIX kgnet: <https://www.kgnet.com/>
                   DELETE { ?m ?p ?o } WHERE {
                     ?m a kgnet:NodeClassifier .
                     ?m kgnet:TargetNode dblp:Publication . }"#,
            )
            .unwrap();
        let MlOutcome::DeletedModels(uris) = out else { panic!("expected delete") };
        assert_eq!(uris.len(), 1);
        assert!(platform.manager().kgmeta().is_empty());
    }

    #[test]
    fn sparql_on_missing_rows_is_error() {
        let platform = fast_platform(7);
        let err = platform.sparql("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> }");
        assert!(matches!(err, Err(MlError::ReadOnly)));
    }

    #[test]
    fn query_reads_through_shared_borrow() {
        let mut platform = fast_platform(9);
        platform
            .execute(
                r#"PREFIX dblp: <https://www.dblp.org/>
                   PREFIX kgnet: <https://www.kgnet.com/>
                   INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                     {Name: 'pv', GML-Task:{ TaskType: kgnet:NodeClassifier,
                        TargetNode: dblp:Publication, NodeLabel: dblp:publishedIn},
                      Method: 'GCN'})}"#,
            )
            .unwrap();
        let shared: &KgNet = &platform;
        let rows = shared
            .sparql(
                r#"PREFIX dblp: <https://www.dblp.org/>
                   PREFIX kgnet: <https://www.kgnet.com/>
                   SELECT ?paper ?venue WHERE {
                     ?paper a dblp:Publication .
                     ?paper ?NC ?venue .
                     ?NC a kgnet:NodeClassifier .
                     ?NC kgnet:TargetNode dblp:Publication .
                     ?NC kgnet:NodeLabel dblp:publishedIn . }"#,
            )
            .unwrap();
        assert_eq!(rows.len(), 60);
    }
}
