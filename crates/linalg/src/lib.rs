//! # kgnet-linalg
//!
//! Numerical substrate for the KGNet reproduction: dense matrices, CSR sparse
//! matrices, a reverse-mode autodiff tape, weight initialisers, first-order
//! optimizers, and a global logical-memory tracker used to report training
//! memory the way the paper's figures do.
//!
//! This crate is the stand-in for `torch.sparse`/PyG tensor machinery in the
//! paper's Fig. 6 pipeline; every GML method in `kgnet-gml` is built on it.
//!
//! The dense matmul and CSR spmm kernels are data-parallel over output-row
//! blocks on the vendored `rayon` work-stealing pool (sized by
//! `RAYON_NUM_THREADS`), with a sequential cutoff for small shapes. Each
//! output row keeps the sequential accumulation order, so results are
//! bit-identical on pools of any size.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod csr;
pub mod init;
pub mod kernels;
pub mod matrix;
pub mod memtrack;
pub mod optim;
pub mod tape;

pub use csr::CsrMatrix;
pub use matrix::Matrix;
pub use optim::{Adam, Optimizer, ParamId, ParamStore, Sgd};
pub use tape::{Tape, Var};

#[cfg(test)]
mod proptests {
    use crate::csr::CsrMatrix;
    use crate::matrix::Matrix;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// spmm must agree with dense matmul for arbitrary sparse patterns.
        #[test]
        fn spmm_matches_dense(
            entries in proptest::collection::vec((0u32..8, 0u32..8, -2.0f32..2.0), 0..40),
            cols in 1usize..5,
        ) {
            let m = CsrMatrix::from_coo(8, 8, entries);
            let x = Matrix::from_fn(8, cols, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);
            let sparse = m.spmm(&x);
            let dense = m.to_dense().matmul(&x);
            for (a, b) in sparse.as_slice().iter().zip(dense.as_slice()) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }

        /// Transposing twice is the identity on the dense image.
        #[test]
        fn csr_double_transpose_identity(
            entries in proptest::collection::vec((0u32..6, 0u32..9, -1.0f32..1.0), 0..30),
        ) {
            let m = CsrMatrix::from_coo(6, 9, entries);
            let tt = m.transpose().transpose();
            prop_assert_eq!(m.to_dense(), tt.to_dense());
        }

        /// (A B)ᵀ = Bᵀ Aᵀ.
        #[test]
        fn matmul_transpose_law(
            a_seed in 0u64..1000,
            rows in 1usize..5,
            inner in 1usize..5,
            cols in 1usize..5,
        ) {
            let a = Matrix::from_fn(rows, inner, |r, c| ((a_seed as usize + r * 3 + c) % 7) as f32 - 3.0);
            let b = Matrix::from_fn(inner, cols, |r, c| ((a_seed as usize + r + c * 5) % 11) as f32 - 5.0);
            let left = a.matmul(&b).transpose();
            let right = b.transpose().matmul(&a.transpose());
            prop_assert_eq!(left, right);
        }

        /// gather_rows preserves each selected row exactly.
        #[test]
        fn gather_rows_preserves_rows(
            idx in proptest::collection::vec(0u32..10, 1..20),
        ) {
            let m = Matrix::from_fn(10, 4, |r, c| (r * 4 + c) as f32);
            let g = m.gather_rows(&idx);
            for (i, &r) in idx.iter().enumerate() {
                prop_assert_eq!(g.row(i), m.row(r as usize));
            }
        }

        /// The forced-parallel matmul kernels must equal the forced-sequential
        /// reference bit-for-bit on arbitrary shapes (cutoff 0 drives every
        /// shape down the row-block parallel path).
        #[test]
        fn parallel_matmul_matches_sequential(
            seed in 0u64..1000,
            rows in 1usize..24,
            inner in 1usize..24,
            cols in 1usize..24,
        ) {
            let s = seed as usize;
            let a = Matrix::from_fn(rows, inner, |r, c| ((s + r * 13 + c * 7) % 17) as f32 - 8.0);
            let b = Matrix::from_fn(inner, cols, |r, c| ((s + r * 3 + c * 11) % 19) as f32 - 9.0);
            prop_assert_eq!(a.matmul_impl(&b, 0), a.matmul_impl(&b, usize::MAX));
            let bt = Matrix::from_fn(rows, cols, |r, c| ((s + r * 5 + c) % 23) as f32 - 11.0);
            prop_assert_eq!(a.matmul_tn_impl(&bt, 0), a.matmul_tn_impl(&bt, usize::MAX));
            let bn = Matrix::from_fn(cols, inner, |r, c| ((s + r + c * 9) % 13) as f32 - 6.0);
            prop_assert_eq!(a.matmul_nt_impl(&bn, 0), a.matmul_nt_impl(&bn, usize::MAX));
        }

        /// The forced-parallel spmm must equal the forced-sequential
        /// reference bit-for-bit on arbitrary sparse patterns.
        #[test]
        fn parallel_spmm_matches_sequential(
            entries in proptest::collection::vec((0u32..16, 0u32..16, -2.0f32..2.0), 0..80),
            cols in 1usize..6,
        ) {
            let m = CsrMatrix::from_coo(16, 16, entries);
            let x = Matrix::from_fn(16, cols, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);
            prop_assert_eq!(m.spmm_impl(&x, 0), m.spmm_impl(&x, usize::MAX));
        }
    }
}
