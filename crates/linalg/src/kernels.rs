//! Dense f32 distance kernels shared by the embedding store and the ANN
//! indexes: dot product, squared Euclidean distance and vector norm, each
//! accumulated over four fixed lanes.
//!
//! The four-lane split breaks the sequential dependency chain of a naive
//! fold (letting the CPU keep several FMAs in flight) while staying fully
//! deterministic: the lane structure depends only on the input length, so
//! the same inputs always produce the same bits, on any thread count and
//! whether called from the parallel or sequential paths.

/// Dot product `Σ a[i]·b[i]` over the common prefix of the two slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / 4;
    let mut acc = [0.0f32; 4];
    for i in 0..chunks {
        let base = i * 4;
        acc[0] += a[base] * b[base];
        acc[1] += a[base + 1] * b[base + 1];
        acc[2] += a[base + 2] * b[base + 2];
        acc[3] += a[base + 3] * b[base + 3];
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..n {
        tail += a[i] * b[i];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Squared Euclidean distance `Σ (a[i]-b[i])²` over the common prefix.
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / 4;
    let mut acc = [0.0f32; 4];
    for i in 0..chunks {
        let base = i * 4;
        let d0 = a[base] - b[base];
        let d1 = a[base + 1] - b[base + 1];
        let d2 = a[base + 2] - b[base + 2];
        let d3 = a[base + 3] - b[base + 3];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..n {
        let d = a[i] - b[i];
        tail += d * d;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Euclidean norm `√(Σ a[i]²)`.
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_within_f32_noise() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 33, 100] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
            let naive: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
            assert!((dot(&a, &b) as f64 - naive).abs() < 1e-4 * (1.0 + naive.abs()), "n={n}");
        }
    }

    #[test]
    fn l2_matches_naive_within_f32_noise() {
        for n in [0usize, 1, 4, 9, 64, 100] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.29).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.53).cos()).collect();
            let naive: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| (x as f64 - y as f64) * (x as f64 - y as f64))
                .sum();
            assert!((l2_sq(&a, &b) as f64 - naive).abs() < 1e-4 * (1.0 + naive), "n={n}");
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        let a: Vec<f32> = (0..103).map(|i| (i as f32 * 0.7).sin()).collect();
        let b: Vec<f32> = (0..103).map(|i| (i as f32 * 1.3).cos()).collect();
        assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
        assert_eq!(l2_sq(&a, &b).to_bits(), l2_sq(&a, &b).to_bits());
        assert_eq!(norm(&a).to_bits(), norm(&a).to_bits());
    }

    #[test]
    fn norm_of_unit_axis_is_one() {
        let mut v = vec![0.0f32; 9];
        v[5] = 1.0;
        assert_eq!(norm(&v), 1.0);
        assert_eq!(norm(&[]), 0.0);
    }
}
