//! Compressed sparse row matrices.
//!
//! This is the `TORCH.SPARSE` stand-in from Fig. 6 of the paper: the data
//! transformer converts the task-specific subgraph into CSR adjacency
//! matrices, and every GNN method consumes them through [`CsrMatrix::spmm`].

use crate::matrix::{Matrix, PAR_MIN_FLOPS};
use crate::memtrack;

/// An immutable CSR sparse matrix of `f32` values.
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build from COO entries `(row, col, value)`. Duplicate coordinates are
    /// summed. Entries outside the given shape panic.
    pub fn from_coo(n_rows: usize, n_cols: usize, mut entries: Vec<(u32, u32, f32)>) -> Self {
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; n_rows + 1];
        let mut indices = Vec::with_capacity(entries.len());
        let mut values: Vec<f32> = Vec::with_capacity(entries.len());
        let mut prev: Option<(u32, u32)> = None;
        for &(r, c, v) in &entries {
            assert!((r as usize) < n_rows, "row {r} out of bounds ({n_rows})");
            assert!((c as usize) < n_cols, "col {c} out of bounds ({n_cols})");
            if prev == Some((r, c)) {
                *values.last_mut().expect("merge target exists") += v;
            } else {
                indices.push(c);
                values.push(v);
                indptr[r as usize + 1] += 1;
                prev = Some((r, c));
            }
        }
        for i in 0..n_rows {
            indptr[i + 1] += indptr[i];
        }
        let nbytes = indptr.capacity() * 8 + indices.capacity() * 4 + values.capacity() * 4;
        memtrack::charge(nbytes);
        CsrMatrix { n_rows, n_cols, indptr, indices, values }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Column indices and values of a row.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let start = self.indptr[r];
        let end = self.indptr[r + 1];
        (&self.indices[start..end], &self.values[start..end])
    }

    /// Out-degree (stored entries) of a row.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Kernel for output rows `r0..`, writing into a row block of the output.
    fn spmm_block(&self, dense: &Matrix, r0: usize, out_chunk: &mut [f32]) {
        let n = dense.cols();
        for (i, out_row) in out_chunk.chunks_mut(n).enumerate() {
            let (cols, vals) = self.row(r0 + i);
            for (&c, &v) in cols.iter().zip(vals) {
                let d_row = dense.row(c as usize);
                for (o, &d) in out_row.iter_mut().zip(d_row) {
                    *o += v * d;
                }
            }
        }
    }

    /// Sparse-dense product: `self @ dense`, row-block parallel above a
    /// work cutoff. Each output row is written by one thread with the
    /// sequential kernel's accumulation order, so results are bit-identical
    /// for every pool size.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        self.spmm_impl(dense, PAR_MIN_FLOPS)
    }

    pub(crate) fn spmm_impl(&self, dense: &Matrix, par_min_flops: usize) -> Matrix {
        assert_eq!(self.n_cols, dense.rows(), "spmm shape mismatch");
        let mut out = Matrix::zeros(self.n_rows, dense.cols());
        let work = self.nnz() * dense.cols();
        Matrix::run_row_blocks(&mut out, work, par_min_flops, |r0, chunk| {
            self.spmm_block(dense, r0, chunk)
        });
        out
    }

    /// Transposed copy (used to backpropagate through `spmm`).
    pub fn transpose(&self) -> CsrMatrix {
        let mut entries = Vec::with_capacity(self.nnz());
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                entries.push((c, r as u32, v));
            }
        }
        CsrMatrix::from_coo(self.n_cols, self.n_rows, entries)
    }

    /// Dense copy (tests / tiny matrices only).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.n_rows, self.n_cols);
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                out.set(r, c as usize, out.get(r, c as usize) + v);
            }
        }
        out
    }

    /// Symmetrically normalised adjacency with self-loops:
    /// `D^{-1/2} (A + I) D^{-1/2}` over an unweighted edge list. This is the
    /// standard GCN propagation operator.
    pub fn gcn_norm(n: usize, edges: &[(u32, u32)]) -> CsrMatrix {
        let mut deg = vec![1.0f32; n]; // self loop contributes 1
        for &(s, d) in edges {
            deg[s as usize] += 1.0;
            deg[d as usize] += 1.0;
        }
        let inv_sqrt: Vec<f32> = deg.iter().map(|&d| 1.0 / d.sqrt()).collect();
        let mut entries = Vec::with_capacity(edges.len() * 2 + n);
        for &(s, d) in edges {
            let w = inv_sqrt[s as usize] * inv_sqrt[d as usize];
            entries.push((s, d, w));
            entries.push((d, s, w));
        }
        for (i, &inv) in inv_sqrt.iter().enumerate() {
            entries.push((i as u32, i as u32, inv * inv));
        }
        CsrMatrix::from_coo(n, n, entries)
    }

    /// Row-normalised adjacency `D^{-1} A` over a directed edge list, with
    /// self-loops added to rows of out-degree zero so no node loses its
    /// representation. Used per relation by RGCN.
    pub fn row_norm(n: usize, edges: &[(u32, u32)]) -> CsrMatrix {
        let mut deg = vec![0u32; n];
        for &(s, _) in edges {
            deg[s as usize] += 1;
        }
        let mut entries = Vec::with_capacity(edges.len());
        for &(s, d) in edges {
            entries.push((s, d, 1.0 / deg[s as usize] as f32));
        }
        CsrMatrix::from_coo(n, n, entries)
    }

    /// Extract the given rows into a compact `rows.len() x n_cols` matrix
    /// (used to restrict per-relation propagation to active sources).
    pub fn select_rows(&self, rows: &[u32]) -> CsrMatrix {
        let mut entries = Vec::new();
        for (new_r, &r) in rows.iter().enumerate() {
            let (cols, vals) = self.row(r as usize);
            for (&c, &v) in cols.iter().zip(vals) {
                entries.push((new_r as u32, c, v));
            }
        }
        CsrMatrix::from_coo(rows.len(), self.n_cols, entries)
    }

    /// Rows with at least one stored entry.
    pub fn active_rows(&self) -> Vec<u32> {
        (0..self.n_rows as u32).filter(|&r| self.row_nnz(r as usize) > 0).collect()
    }

    /// Logical bytes charged to memtrack.
    pub fn nbytes(&self) -> usize {
        self.indptr.capacity() * 8 + self.indices.capacity() * 4 + self.values.capacity() * 4
    }

    /// Iterate all stored entries as `(row, col, value)`.
    pub fn iter_entries(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.n_rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r as u32, c, v))
        })
    }
}

impl Drop for CsrMatrix {
    fn drop(&mut self) {
        let nbytes =
            self.indptr.capacity() * 8 + self.indices.capacity() * 4 + self.values.capacity() * 4;
        memtrack::discharge(nbytes);
    }
}

impl std::fmt::Debug for CsrMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CsrMatrix({}x{}, nnz={})", self.n_rows, self.n_cols, self.nnz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_coo_sorts_and_sums_duplicates() {
        let m = CsrMatrix::from_coo(2, 3, vec![(1, 2, 1.0), (0, 1, 2.0), (1, 2, 3.0)]);
        assert_eq!(m.nnz(), 2);
        let (cols, vals) = m.row(1);
        assert_eq!(cols, &[2]);
        assert_eq!(vals, &[4.0]);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = CsrMatrix::from_coo(3, 3, vec![(0, 1, 2.0), (1, 0, 1.0), (2, 2, 3.0)]);
        let x = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 + 1.0);
        let sparse = m.spmm(&x);
        let dense = m.to_dense().matmul(&x);
        assert_eq!(sparse, dense);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = CsrMatrix::from_coo(3, 4, vec![(0, 3, 1.0), (2, 1, 5.0), (1, 0, -2.0)]);
        let tt = m.transpose().transpose();
        assert_eq!(m.to_dense(), tt.to_dense());
    }

    #[test]
    fn gcn_norm_rows_reference_values() {
        // Path graph 0-1: deg+selfloop = [2,2]; entries 1/sqrt(2*2)=0.5.
        let a = CsrMatrix::gcn_norm(2, &[(0, 1)]);
        let d = a.to_dense();
        for r in 0..2 {
            for c in 0..2 {
                assert!((d.get(r, c) - 0.5).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn row_norm_rows_sum_to_one() {
        let a = CsrMatrix::row_norm(3, &[(0, 1), (0, 2), (1, 2)]);
        let d = a.to_dense();
        let row0: f32 = (0..3).map(|c| d.get(0, c)).sum();
        let row1: f32 = (0..3).map(|c| d.get(1, c)).sum();
        assert!((row0 - 1.0).abs() < 1e-6);
        assert!((row1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_spmm_bitwise_equals_sequential() {
        // A 200-row band matrix against a 64-wide dense block is far above
        // the cutoff; forced-parallel and forced-sequential must agree
        // exactly, on pools of any size.
        let entries: Vec<(u32, u32, f32)> = (0..200u32)
            .flat_map(|r| (0..5u32).map(move |k| (r, (r + k * 17) % 200, (r + k) as f32 * 0.1)))
            .collect();
        let m = CsrMatrix::from_coo(200, 200, entries);
        let x = Matrix::from_fn(200, 64, |r, c| ((r * 3 + c * 5) % 9) as f32 - 4.0);
        let seq = m.spmm_impl(&x, usize::MAX);
        let par = m.spmm_impl(&x, 0);
        assert_eq!(seq, par);
        let p4 = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let par4 = p4.install(|| m.spmm_impl(&x, 0));
        assert_eq!(seq, par4);
    }

    #[test]
    fn memtrack_charged_and_released() {
        // Other tests allocate concurrently, so retry until a quiet window.
        let ok = (0..50).any(|_| {
            let before = crate::memtrack::live_bytes();
            let m = CsrMatrix::from_coo(10, 10, vec![(0, 0, 1.0), (5, 5, 1.0)]);
            let charged = crate::memtrack::live_bytes() >= before + m.nbytes() - 16;
            drop(m);
            charged && crate::memtrack::live_bytes() == before
        });
        assert!(ok, "memtrack never observed a balanced charge/discharge");
    }
}
