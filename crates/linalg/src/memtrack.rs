//! Global logical-memory accounting for the training pipeline.
//!
//! The paper reports *training memory* for each pipeline (Figs. 13–15). We
//! cannot measure the resident set of the authors' PyG/DGL processes, so the
//! reproduction charges every matrix/tensor allocation made by the pipeline
//! to a global counter. Peak resident memory of a GML training run is
//! dominated by exactly these buffers (features, adjacency, activations,
//! gradients, optimizer state), so the tracked peak preserves the relative
//! shape the paper reports.
//!
//! The tracker is process-global, lock-free, and safe to update from the
//! thread-pool workers that now run parallel kernels and per-batch gradient
//! tapes: `LIVE` is a plain atomic counter, and the peak is maintained with
//! a CAS max-loop, so no concurrent charge can be lost. Experiments call
//! [`reset_peak`] before a run and read [`peak_bytes`] after it.

use kgnet_sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Record an allocation of `bytes` logical bytes. Callable from any thread.
pub fn charge(bytes: usize) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    // CAS max-loop: every concurrent charger either installs its own live
    // volume or observes a strictly larger one, so the recorded peak is
    // exact under parallel allocation (Relaxed suffices — the counters are
    // measurements with no ordering dependencies on other memory).
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

/// Record a deallocation of `bytes` logical bytes.
pub fn discharge(bytes: usize) {
    LIVE.fetch_sub(bytes, Ordering::Relaxed);
}

/// Currently live tracked bytes.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak to the current live volume (start of an experiment).
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// RAII scope that snapshots the tracker and reports the peak *delta*
/// (additional bytes above the live volume at scope start) observed while it
/// was alive.
pub struct MemScope {
    start_live: usize,
}

impl MemScope {
    /// Open a measurement scope, resetting the global peak.
    pub fn begin() -> Self {
        reset_peak();
        MemScope { start_live: live_bytes() }
    }

    /// Peak additional bytes allocated since the scope began.
    pub fn peak_delta(&self) -> usize {
        peak_bytes().saturating_sub(self.start_live)
    }
}

/// Pretty-print a byte count using binary units.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_discharge_roundtrip() {
        // Other tests allocate concurrently, so retry until a quiet window.
        let ok = (0..50).any(|_| {
            let before = live_bytes();
            charge(1024);
            let mid = live_bytes() == before + 1024;
            discharge(1024);
            mid && live_bytes() == before
        });
        assert!(ok, "never observed a balanced charge/discharge");
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        reset_peak();
        let base = live_bytes();
        charge(4096);
        let peaked = peak_bytes() >= base + 4096;
        discharge(4096);
        assert!(peaked);
    }

    #[test]
    fn mem_scope_reports_delta() {
        let scope = MemScope::begin();
        charge(10_000);
        discharge(10_000);
        assert!(scope.peak_delta() >= 10_000);
    }

    #[test]
    fn concurrent_charges_from_pool_workers_balance() {
        // Charge/discharge storms from a dedicated 4-thread pool: the books
        // must balance, and the peak must see at least one allocation's
        // worth above the starting point. Retried because unrelated tests
        // allocate concurrently in this process.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ok = (0..50).any(|_| {
            let before = live_bytes();
            pool.scope(|s| {
                for _ in 0..64 {
                    s.spawn(|_| {
                        charge(4096);
                        std::hint::spin_loop();
                        discharge(4096);
                    });
                }
            });
            live_bytes() == before
        });
        assert!(ok, "parallel charge/discharge never balanced");
        // Same retry discipline for the peak assertion: a concurrent test
        // discharging a large buffer mid-scope could otherwise mask the peak.
        let peaked = (0..50).any(|_| {
            let scope = MemScope::begin();
            pool.scope(|s| {
                for _ in 0..8 {
                    s.spawn(|_| {
                        charge(10_000);
                        discharge(10_000);
                    });
                }
            });
            scope.peak_delta() >= 10_000
        });
        assert!(peaked, "parallel charges never registered in the peak");
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MiB");
    }
}
