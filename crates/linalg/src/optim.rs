//! Parameter storage and first-order optimizers (SGD, Adam).
//!
//! Trainers keep their weights in a [`ParamStore`], rebuild a fresh tape per
//! step, copy leaf gradients back with [`ParamStore::set_grad`], and apply an
//! [`Optimizer`] step.

use crate::matrix::Matrix;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(usize);

/// Owned parameter matrices plus their current gradients.
#[derive(Default)]
pub struct ParamStore {
    params: Vec<Matrix>,
    grads: Vec<Option<Matrix>>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter, returning its handle.
    pub fn add(&mut self, value: Matrix) -> ParamId {
        self.params.push(value);
        self.grads.push(None);
        ParamId(self.params.len() - 1)
    }

    /// Current value.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.params[id.0]
    }

    /// Mutable value (manual-gradient trainers update in place).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0]
    }

    /// Install the gradient for one parameter.
    pub fn set_grad(&mut self, id: ParamId, grad: Matrix) {
        debug_assert_eq!(self.params[id.0].shape(), grad.shape(), "grad shape mismatch");
        self.grads[id.0] = Some(grad);
    }

    /// Clear all gradients.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            *g = None;
        }
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total parameter element count.
    pub fn n_elements(&self) -> usize {
        self.params.iter().map(Matrix::len).sum()
    }

    fn iter_with_grads(&mut self) -> impl Iterator<Item = (&mut Matrix, &Matrix)> {
        self.params
            .iter_mut()
            .zip(self.grads.iter())
            .filter_map(|(p, g)| g.as_ref().map(|g| (p, g)))
    }
}

/// A first-order optimizer over a [`ParamStore`].
pub trait Optimizer {
    /// Apply one update using the gradients currently installed in `store`,
    /// then clear them.
    fn step(&mut self, store: &mut ParamStore);
    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f32;
}

/// Plain stochastic gradient descent with optional weight decay.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Decoupled L2 weight decay coefficient.
    pub weight_decay: f32,
}

impl Sgd {
    /// SGD with the given learning rate and no weight decay.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, weight_decay: 0.0 }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let (lr, wd) = (self.lr, self.weight_decay);
        for (p, g) in store.iter_with_grads() {
            if wd > 0.0 {
                p.scale_assign(1.0 - lr * wd);
            }
            p.axpy(-lr, g);
        }
        store.zero_grads();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba) with decoupled weight decay (AdamW-style).
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Adam with standard betas (0.9 / 0.999) and no weight decay.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: vec![],
            v: vec![],
        }
    }

    /// Builder-style weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        while self.m.len() < store.len() {
            self.m.push(None);
            self.v.push(None);
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..store.len() {
            let Some(grad) = store.grads[i].take() else { continue };
            let p = &mut store.params[i];
            let m = self.m[i].get_or_insert_with(|| Matrix::zeros(p.rows(), p.cols()));
            let v = self.v[i].get_or_insert_with(|| Matrix::zeros(p.rows(), p.cols()));
            if self.weight_decay > 0.0 {
                p.scale_assign(1.0 - self.lr * self.weight_decay);
            }
            for ((pv, gv), (mv, vv)) in p
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *pv -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
        store.zero_grads();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Matrix) -> Matrix {
        // f(p) = 0.5 * ||p - 3||^2, grad = p - 3.
        p.map(|v| v - 3.0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add(Matrix::filled(2, 2, 10.0));
        let mut opt = Sgd::new(0.2);
        for _ in 0..100 {
            let g = quadratic_grad(store.get(id));
            store.set_grad(id, g);
            opt.step(&mut store);
        }
        for &v in store.get(id).as_slice() {
            assert!((v - 3.0).abs() < 1e-3, "v = {v}");
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add(Matrix::filled(2, 2, 10.0));
        let mut opt = Adam::new(0.3);
        for _ in 0..300 {
            let g = quadratic_grad(store.get(id));
            store.set_grad(id, g);
            opt.step(&mut store);
        }
        for &v in store.get(id).as_slice() {
            assert!((v - 3.0).abs() < 1e-2, "v = {v}");
        }
    }

    #[test]
    fn step_without_grads_is_noop() {
        let mut store = ParamStore::new();
        let id = store.add(Matrix::filled(1, 3, 5.0));
        let before = store.get(id).clone();
        let mut opt = Adam::new(0.1);
        opt.step(&mut store);
        assert_eq!(&before, store.get(id));
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut store = ParamStore::new();
        let id = store.add(Matrix::filled(1, 1, 1.0));
        let mut opt = Sgd { lr: 0.1, weight_decay: 0.5 };
        store.set_grad(id, Matrix::zeros(1, 1));
        opt.step(&mut store);
        let v = store.get(id).get(0, 0);
        assert!((v - 0.95).abs() < 1e-6, "v = {v}");
    }
}
