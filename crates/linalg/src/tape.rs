//! Minimal reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! The GNN methods of the paper (GCN, RGCN, GraphSAINT, ShadowSAINT) are all
//! expressed as compositions of a small closed set of operations: dense
//! matmul, sparse-dense matmul, bias/elementwise ops, ReLU, dropout, row
//! gather, grouped mean-pooling and softmax cross-entropy. A tape of those
//! operations with exact gradients reproduces the training dynamics of the
//! PyG/DGL pipelines the paper uses, at laptop scale.
//!
//! Usage: build a fresh [`Tape`] per step, feed parameters in as leaves,
//! compose ops, call [`Tape::backward`] on the loss var, then read leaf
//! gradients back out with [`Tape::grad`].

use std::rc::Rc;

use rand::Rng;

use crate::csr::CsrMatrix;
use crate::matrix::Matrix;

/// Handle to a value on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    /// Leaf value (parameter or constant input).
    Leaf,
    MatMul(Var, Var),
    SpMM {
        adj: usize,
        x: Var,
    },
    Add(Var, Var),
    /// `a + bias` where bias is `1 x cols` broadcast over rows.
    AddBias(Var, Var),
    Relu(Var),
    /// Inverted dropout; `mask` holds `0` or `1/(1-p)` per element.
    Dropout(Var, Matrix),
    Scale(Var, f32),
    Mul(Var, Var),
    Gather(Var, Rc<Vec<u32>>),
    /// Mean over contiguous row groups given by offsets (CSR-style).
    MeanPool(Var, Rc<Vec<usize>>),
    /// Sum several `k_i x d` parts into an `n x d` output, part `i`'s row
    /// `j` landing on output row `rows_i[j]` (duplicates accumulate).
    ScatterSum {
        /// `(part, target rows)` pairs.
        parts: Vec<(Var, Rc<Vec<u32>>)>,
    },
    /// Scalar softmax cross-entropy against integer labels.
    SoftmaxCe {
        logits: Var,
        probs: Matrix,
    },
    /// Scalar mean squared L2 norm of a var (weight decay à la carte).
    L2(Var),
    /// Add a scalar constant elementwise (constant kept for Debug).
    AddScalar(Var),
    /// Row-wise sum producing a `k x 1` column.
    RowSum(Var),
    /// Sum of all elements producing a `1 x 1` scalar.
    SumAll(Var),
    /// Elementwise square root (clamped at a small epsilon).
    Sqrt(Var),
    /// Contiguous column slice `[start, end)`.
    SliceCols(Var, usize, usize),
    /// Elementwise softplus `ln(1 + e^x)`.
    Softplus(Var),
    /// Elementwise sine.
    Sin(Var),
    /// Elementwise cosine.
    Cos(Var),
}

struct Node {
    op: Op,
    value: Matrix,
    grad: Option<Matrix>,
    needs_grad: bool,
}

/// A single-use reverse-mode differentiation tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    adjs: Vec<Rc<CsrMatrix>>,
}

impl Tape {
    /// Fresh empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    fn push(&mut self, op: Op, value: Matrix, needs_grad: bool) -> Var {
        self.nodes.push(Node { op, value, grad: None, needs_grad });
        Var(self.nodes.len() - 1)
    }

    /// Register a trainable leaf (its gradient will be accumulated).
    pub fn param(&mut self, value: Matrix) -> Var {
        self.push(Op::Leaf, value, true)
    }

    /// Register a constant leaf (no gradient).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(Op::Leaf, value, false)
    }

    /// Register a sparse adjacency used by [`Tape::spmm`]. The matrix is
    /// treated as a constant (no gradient w.r.t. edge weights).
    pub fn adjacency(&mut self, adj: Rc<CsrMatrix>) -> usize {
        self.adjs.push(adj);
        self.adjs.len() - 1
    }

    /// Current value of a var.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of a var after [`Tape::backward`], if it required one.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Take ownership of a leaf gradient (avoids a copy in optimizers).
    pub fn take_grad(&mut self, v: Var) -> Option<Matrix> {
        self.nodes[v.0].grad.take()
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// Dense product `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::MatMul(a, b), value, ng)
    }

    /// Sparse-dense product `adj @ x` for a registered adjacency.
    pub fn spmm(&mut self, adj: usize, x: Var) -> Var {
        let value = self.adjs[adj].spmm(&self.nodes[x.0].value);
        let ng = self.needs(x);
        self.push(Op::SpMM { adj, x }, value, ng)
    }

    /// Elementwise sum of two same-shaped vars.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        value.add_assign(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Add(a, b), value, ng)
    }

    /// Broadcast-add a `1 x d` bias row to every row of `a`.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let b = &self.nodes[bias.0].value;
        assert_eq!(b.rows(), 1, "bias must be a single row");
        assert_eq!(b.cols(), self.nodes[a.0].value.cols(), "bias width mismatch");
        let mut value = self.nodes[a.0].value.clone();
        for r in 0..value.rows() {
            let row = value.row_mut(r);
            for (o, &bv) in row.iter_mut().zip(b.row(0)) {
                *o += bv;
            }
        }
        let ng = self.needs(a) || self.needs(bias);
        self.push(Op::AddBias(a, bias), value, ng)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|v| v.max(0.0));
        let ng = self.needs(a);
        self.push(Op::Relu(a), value, ng)
    }

    /// Inverted dropout with keep-prob `1 - p`; identity when `p == 0`.
    pub fn dropout(&mut self, a: Var, p: f32, rng: &mut impl Rng) -> Var {
        if p <= 0.0 {
            return a;
        }
        let (rows, cols) = self.nodes[a.0].value.shape();
        let scale = 1.0 / (1.0 - p);
        let mask =
            Matrix::from_fn(rows, cols, |_, _| if rng.gen::<f32>() < p { 0.0 } else { scale });
        let src = &self.nodes[a.0].value;
        let mut value = Matrix::zeros(rows, cols);
        for (o, (&x, &m)) in
            value.as_mut_slice().iter_mut().zip(src.as_slice().iter().zip(mask.as_slice()))
        {
            *o = x * m;
        }
        let ng = self.needs(a);
        self.push(Op::Dropout(a, mask), value, ng)
    }

    /// Multiply by a scalar.
    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let value = self.nodes[a.0].value.map(|v| v * alpha);
        let ng = self.needs(a);
        self.push(Op::Scale(a, alpha), value, ng)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(av.shape(), bv.shape(), "mul shape mismatch");
        let mut value = Matrix::zeros(av.rows(), av.cols());
        for (o, (&x, &y)) in
            value.as_mut_slice().iter_mut().zip(av.as_slice().iter().zip(bv.as_slice()))
        {
            *o = x * y;
        }
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Mul(a, b), value, ng)
    }

    /// Select rows of `a` by index (with repetition allowed).
    pub fn gather(&mut self, a: Var, rows: Rc<Vec<u32>>) -> Var {
        let value = self.nodes[a.0].value.gather_rows(&rows);
        let ng = self.needs(a);
        self.push(Op::Gather(a, rows), value, ng)
    }

    /// Sum `k_i x d` parts into one `n_rows x d` matrix, scattering part
    /// rows to the given output rows (RGCN's per-relation aggregation).
    pub fn scatter_sum(&mut self, parts: Vec<(Var, Rc<Vec<u32>>)>, n_rows: usize) -> Var {
        assert!(!parts.is_empty(), "scatter_sum needs at least one part");
        let cols = self.nodes[parts[0].0 .0].value.cols();
        let mut value = Matrix::zeros(n_rows, cols);
        let mut ng = false;
        for (v, rows) in &parts {
            let src = &self.nodes[v.0].value;
            assert_eq!(src.cols(), cols, "scatter_sum column mismatch");
            assert_eq!(src.rows(), rows.len(), "scatter_sum row-map mismatch");
            ng |= self.needs(*v);
            for (j, &r) in rows.iter().enumerate() {
                let out = value.row_mut(r as usize);
                for (o, &x) in out.iter_mut().zip(src.row(j)) {
                    *o += x;
                }
            }
        }
        self.push(Op::ScatterSum { parts }, value, ng)
    }

    /// Mean-pool contiguous row groups. `offsets` has `groups + 1` entries;
    /// group `g` covers rows `offsets[g]..offsets[g+1]` of `a`.
    pub fn mean_pool(&mut self, a: Var, offsets: Rc<Vec<usize>>) -> Var {
        let src = &self.nodes[a.0].value;
        let groups = offsets.len() - 1;
        let mut value = Matrix::zeros(groups, src.cols());
        for g in 0..groups {
            let (start, end) = (offsets[g], offsets[g + 1]);
            assert!(end >= start && end <= src.rows(), "bad pool offsets");
            if end == start {
                continue;
            }
            let inv = 1.0 / (end - start) as f32;
            for r in start..end {
                let row = src.row(r);
                let out = value.row_mut(g);
                for (o, &x) in out.iter_mut().zip(row) {
                    *o += x * inv;
                }
            }
        }
        let ng = self.needs(a);
        self.push(Op::MeanPool(a, offsets), value, ng)
    }

    /// Mean softmax cross-entropy of `logits` rows against integer labels,
    /// optionally weighted per-row (GraphSAINT loss normalisation).
    pub fn softmax_ce_weighted(
        &mut self,
        logits: Var,
        labels: Rc<Vec<u32>>,
        weights: Option<&[f32]>,
    ) -> Var {
        let lv = &self.nodes[logits.0].value;
        assert_eq!(lv.rows(), labels.len(), "labels length mismatch");
        let n = lv.rows();
        let c = lv.cols();
        let mut probs = Matrix::zeros(n, c);
        let mut loss = 0.0f64;
        let mut wsum = 0.0f64;
        for r in 0..n {
            let row = lv.row(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (i, &x) in row.iter().enumerate() {
                let e = (x - max).exp();
                probs.set(r, i, e);
                denom += e;
            }
            let w = weights.map_or(1.0, |ws| ws[r]) as f64;
            let label = labels[r] as usize;
            assert!(label < c, "label {label} out of range for {c} classes");
            let p = probs.get(r, label) / denom;
            loss -= w * (p.max(1e-12) as f64).ln();
            wsum += w;
            // Store dL/dlogits-per-row pre-weighting: softmax - onehot.
            for i in 0..c {
                let sm = probs.get(r, i) / denom;
                let grad = (sm - if i == label { 1.0 } else { 0.0 }) * w as f32;
                probs.set(r, i, grad);
            }
        }
        let mean = if wsum > 0.0 { (loss / wsum) as f32 } else { 0.0 };
        if wsum > 0.0 {
            probs.scale_assign(1.0 / wsum as f32);
        }
        let value = Matrix::from_vec(1, 1, vec![mean]);
        let ng = self.needs(logits);
        self.push(Op::SoftmaxCe { logits, probs }, value, ng)
    }

    /// Unweighted mean softmax cross-entropy.
    pub fn softmax_ce(&mut self, logits: Var, labels: Rc<Vec<u32>>) -> Var {
        self.softmax_ce_weighted(logits, labels, None)
    }

    /// Add a scalar constant elementwise.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let value = self.nodes[a.0].value.map(|v| v + c);
        let ng = self.needs(a);
        self.push(Op::AddScalar(a), value, ng)
    }

    /// Row-wise sum: `k x d -> k x 1`.
    pub fn row_sum(&mut self, a: Var) -> Var {
        let src = &self.nodes[a.0].value;
        let mut value = Matrix::zeros(src.rows(), 1);
        for r in 0..src.rows() {
            value.set(r, 0, src.row(r).iter().sum());
        }
        let ng = self.needs(a);
        self.push(Op::RowSum(a), value, ng)
    }

    /// Sum of every element: `k x d -> 1 x 1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s = self.nodes[a.0].value.sum();
        let value = Matrix::from_vec(1, 1, vec![s]);
        let ng = self.needs(a);
        self.push(Op::SumAll(a), value, ng)
    }

    /// Mean of every element as a scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let n = self.nodes[a.0].value.len().max(1);
        let s = self.sum_all(a);
        self.scale(s, 1.0 / n as f32)
    }

    /// Elementwise `sqrt(max(x, eps))` — used for L2 distances.
    pub fn sqrt(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|v| v.max(1e-12).sqrt());
        let ng = self.needs(a);
        self.push(Op::Sqrt(a), value, ng)
    }

    /// Contiguous column slice `[start, end)`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let src = &self.nodes[a.0].value;
        assert!(start < end && end <= src.cols(), "bad column slice");
        let mut value = Matrix::zeros(src.rows(), end - start);
        for r in 0..src.rows() {
            value.row_mut(r).copy_from_slice(&src.row(r)[start..end]);
        }
        let ng = self.needs(a);
        self.push(Op::SliceCols(a, start, end), value, ng)
    }

    /// Elementwise softplus `ln(1 + e^x)` (numerically stabilised).
    pub fn softplus(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|v| {
            if v > 20.0 {
                v
            } else if v < -20.0 {
                0.0
            } else {
                (1.0 + v.exp()).ln()
            }
        });
        let ng = self.needs(a);
        self.push(Op::Softplus(a), value, ng)
    }

    /// Elementwise sine.
    pub fn sin(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(f32::sin);
        let ng = self.needs(a);
        self.push(Op::Sin(a), value, ng)
    }

    /// Elementwise cosine.
    pub fn cos(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(f32::cos);
        let ng = self.needs(a);
        self.push(Op::Cos(a), value, ng)
    }

    /// `a - b` elementwise (sugar over add/scale).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let nb = self.scale(b, -1.0);
        self.add(a, nb)
    }

    /// `0.5 * sum(a^2)` as a scalar (for explicit L2 regularisation).
    pub fn l2(&mut self, a: Var) -> Var {
        let s: f32 = self.nodes[a.0].value.as_slice().iter().map(|v| 0.5 * v * v).sum();
        let value = Matrix::from_vec(1, 1, vec![s]);
        let ng = self.needs(a);
        self.push(Op::L2(a), value, ng)
    }

    /// Scalar value of a `1x1` var (e.g. a loss).
    pub fn scalar(&self, v: Var) -> f32 {
        let m = &self.nodes[v.0].value;
        assert_eq!(m.shape(), (1, 1), "scalar() on non-scalar var");
        m.get(0, 0)
    }

    fn accumulate(&mut self, v: Var, grad: Matrix) {
        if !self.nodes[v.0].needs_grad {
            return;
        }
        match &mut self.nodes[v.0].grad {
            Some(g) => g.add_assign(&grad),
            slot @ None => *slot = Some(grad),
        }
    }

    /// Run reverse-mode accumulation seeding `d(root)/d(root) = 1`.
    /// `root` must be a scalar (`1x1`) var.
    pub fn backward(&mut self, root: Var) {
        assert_eq!(self.nodes[root.0].value.shape(), (1, 1), "backward root must be scalar");
        self.nodes[root.0].grad = Some(Matrix::from_vec(1, 1, vec![1.0]));
        for i in (0..=root.0).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            let Some(grad) = self.nodes[i].grad.take() else { continue };
            // Borrow dance: move op out, propagate, put back.
            let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
            self.propagate(&op, &grad);
            self.nodes[i].op = op;
            self.nodes[i].grad = Some(grad);
        }
    }

    fn propagate(&mut self, op: &Op, grad: &Matrix) {
        match op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                if self.needs(*a) {
                    let ga = grad.matmul_nt(&self.nodes[b.0].value);
                    self.accumulate(*a, ga);
                }
                if self.needs(*b) {
                    let gb = self.nodes[a.0].value.matmul_tn(grad);
                    self.accumulate(*b, gb);
                }
            }
            Op::SpMM { adj, x } => {
                if self.needs(*x) {
                    // d/dx (A x) = Aᵀ grad
                    let gt = self.adjs[*adj].transpose().spmm(grad);
                    self.accumulate(*x, gt);
                }
            }
            Op::Add(a, b) => {
                if self.needs(*a) {
                    self.accumulate(*a, grad.clone());
                }
                if self.needs(*b) {
                    self.accumulate(*b, grad.clone());
                }
            }
            Op::AddBias(a, bias) => {
                if self.needs(*a) {
                    self.accumulate(*a, grad.clone());
                }
                if self.needs(*bias) {
                    let mut gb = Matrix::zeros(1, grad.cols());
                    for r in 0..grad.rows() {
                        let row = grad.row(r);
                        let out = gb.row_mut(0);
                        for (o, &g) in out.iter_mut().zip(row) {
                            *o += g;
                        }
                    }
                    self.accumulate(*bias, gb);
                }
            }
            Op::Relu(a) => {
                if self.needs(*a) {
                    let forward = &self.nodes[a.0].value;
                    let mut ga = grad.clone();
                    for (g, &x) in ga.as_mut_slice().iter_mut().zip(forward.as_slice()) {
                        if x <= 0.0 {
                            *g = 0.0;
                        }
                    }
                    self.accumulate(*a, ga);
                }
            }
            Op::Dropout(a, mask) => {
                if self.needs(*a) {
                    let mut ga = grad.clone();
                    for (g, &m) in ga.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                        *g *= m;
                    }
                    self.accumulate(*a, ga);
                }
            }
            Op::Scale(a, alpha) => {
                if self.needs(*a) {
                    let mut ga = grad.clone();
                    ga.scale_assign(*alpha);
                    self.accumulate(*a, ga);
                }
            }
            Op::Mul(a, b) => {
                if self.needs(*a) {
                    let mut ga = grad.clone();
                    for (g, &y) in
                        ga.as_mut_slice().iter_mut().zip(self.nodes[b.0].value.as_slice())
                    {
                        *g *= y;
                    }
                    self.accumulate(*a, ga);
                }
                if self.needs(*b) {
                    let mut gb = grad.clone();
                    for (g, &x) in
                        gb.as_mut_slice().iter_mut().zip(self.nodes[a.0].value.as_slice())
                    {
                        *g *= x;
                    }
                    self.accumulate(*b, gb);
                }
            }
            Op::Gather(a, rows) => {
                if self.needs(*a) {
                    let src = &self.nodes[a.0].value;
                    let mut ga = Matrix::zeros(src.rows(), src.cols());
                    for (i, &r) in rows.iter().enumerate() {
                        let out = ga.row_mut(r as usize);
                        for (o, &g) in out.iter_mut().zip(grad.row(i)) {
                            *o += g;
                        }
                    }
                    self.accumulate(*a, ga);
                }
            }
            Op::ScatterSum { parts } => {
                for (v, rows) in parts {
                    if self.needs(*v) {
                        let gv = grad.gather_rows(rows);
                        self.accumulate(*v, gv);
                    }
                }
            }
            Op::MeanPool(a, offsets) => {
                if self.needs(*a) {
                    let src = &self.nodes[a.0].value;
                    let mut ga = Matrix::zeros(src.rows(), src.cols());
                    for g in 0..offsets.len() - 1 {
                        let (start, end) = (offsets[g], offsets[g + 1]);
                        if end == start {
                            continue;
                        }
                        let inv = 1.0 / (end - start) as f32;
                        for r in start..end {
                            let out = ga.row_mut(r);
                            for (o, &gv) in out.iter_mut().zip(grad.row(g)) {
                                *o += gv * inv;
                            }
                        }
                    }
                    self.accumulate(*a, ga);
                }
            }
            Op::SoftmaxCe { logits, probs } => {
                if self.needs(*logits) {
                    let scale = grad.get(0, 0);
                    let mut gl = probs.clone();
                    gl.scale_assign(scale);
                    self.accumulate(*logits, gl);
                }
            }
            Op::L2(a) => {
                if self.needs(*a) {
                    let scale = grad.get(0, 0);
                    let mut ga = self.nodes[a.0].value.clone();
                    ga.scale_assign(scale);
                    self.accumulate(*a, ga);
                }
            }
            Op::AddScalar(a) => {
                if self.needs(*a) {
                    self.accumulate(*a, grad.clone());
                }
            }
            Op::RowSum(a) => {
                if self.needs(*a) {
                    let src = &self.nodes[a.0].value;
                    let mut ga = Matrix::zeros(src.rows(), src.cols());
                    for r in 0..src.rows() {
                        let g = grad.get(r, 0);
                        for o in ga.row_mut(r) {
                            *o = g;
                        }
                    }
                    self.accumulate(*a, ga);
                }
            }
            Op::SumAll(a) => {
                if self.needs(*a) {
                    let src = &self.nodes[a.0].value;
                    let ga = Matrix::filled(src.rows(), src.cols(), grad.get(0, 0));
                    self.accumulate(*a, ga);
                }
            }
            Op::Sqrt(a) => {
                if self.needs(*a) {
                    // d sqrt(x) = 1 / (2 sqrt(x)); forward clamped at eps.
                    let fwd = &self.nodes[a.0].value;
                    let mut ga = grad.clone();
                    for (g, &x) in ga.as_mut_slice().iter_mut().zip(fwd.as_slice()) {
                        *g *= 0.5 / x.max(1e-12).sqrt();
                    }
                    self.accumulate(*a, ga);
                }
            }
            Op::SliceCols(a, start, _end) => {
                if self.needs(*a) {
                    let src = &self.nodes[a.0].value;
                    let mut ga = Matrix::zeros(src.rows(), src.cols());
                    for r in 0..grad.rows() {
                        let dst = &mut ga.row_mut(r)[*start..*start + grad.cols()];
                        dst.copy_from_slice(grad.row(r));
                    }
                    self.accumulate(*a, ga);
                }
            }
            Op::Softplus(a) => {
                if self.needs(*a) {
                    // d softplus = sigmoid(x).
                    let fwd = &self.nodes[a.0].value;
                    let mut ga = grad.clone();
                    for (g, &x) in ga.as_mut_slice().iter_mut().zip(fwd.as_slice()) {
                        let sig = if x > 20.0 {
                            1.0
                        } else if x < -20.0 {
                            0.0
                        } else {
                            1.0 / (1.0 + (-x).exp())
                        };
                        *g *= sig;
                    }
                    self.accumulate(*a, ga);
                }
            }
            Op::Sin(a) => {
                if self.needs(*a) {
                    let fwd = &self.nodes[a.0].value;
                    let mut ga = grad.clone();
                    for (g, &x) in ga.as_mut_slice().iter_mut().zip(fwd.as_slice()) {
                        *g *= x.cos();
                    }
                    self.accumulate(*a, ga);
                }
            }
            Op::Cos(a) => {
                if self.needs(*a) {
                    let fwd = &self.nodes[a.0].value;
                    let mut ga = grad.clone();
                    for (g, &x) in ga.as_mut_slice().iter_mut().zip(fwd.as_slice()) {
                        *g *= -x.sin();
                    }
                    self.accumulate(*a, ga);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numeric gradient of `f` w.r.t. entry (r,c) of `m` by central
    /// differences.
    fn numeric_grad(
        m: &Matrix,
        r: usize,
        c: usize,
        mut f: impl FnMut(&Matrix) -> f32,
        eps: f32,
    ) -> f32 {
        let mut plus = m.clone();
        plus.set(r, c, plus.get(r, c) + eps);
        let mut minus = m.clone();
        minus.set(r, c, minus.get(r, c) - eps);
        (f(&plus) - f(&minus)) / (2.0 * eps)
    }

    fn seeded(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0f32))
    }

    #[test]
    fn matmul_gradients_match_numeric() {
        let mut rng = seeded(1);
        let a = random_matrix(3, 4, &mut rng);
        let b = random_matrix(4, 2, &mut rng);
        let labels = Rc::new(vec![0u32, 1, 0]);

        let mut tape = Tape::new();
        let va = tape.param(a.clone());
        let vb = tape.param(b.clone());
        let out = tape.matmul(va, vb);
        let loss = tape.softmax_ce(out, labels.clone());
        tape.backward(loss);
        let ga = tape.grad(va).unwrap().clone();
        let gb = tape.grad(vb).unwrap().clone();

        let eval_a = |am: &Matrix| {
            let mut t = Tape::new();
            let va = t.param(am.clone());
            let vb = t.constant(b.clone());
            let o = t.matmul(va, vb);
            let l = t.softmax_ce(o, labels.clone());
            t.scalar(l)
        };
        let eval_b = |bm: &Matrix| {
            let mut t = Tape::new();
            let va = t.constant(a.clone());
            let vb = t.param(bm.clone());
            let o = t.matmul(va, vb);
            let l = t.softmax_ce(o, labels.clone());
            t.scalar(l)
        };
        for (r, c) in [(0, 0), (1, 2), (2, 3)] {
            let n = numeric_grad(&a, r, c, eval_a, 1e-3);
            assert!((ga.get(r, c) - n).abs() < 1e-2, "a[{r},{c}]: {} vs {n}", ga.get(r, c));
        }
        for (r, c) in [(0, 0), (3, 1)] {
            let n = numeric_grad(&b, r, c, eval_b, 1e-3);
            assert!((gb.get(r, c) - n).abs() < 1e-2, "b[{r},{c}]: {} vs {n}", gb.get(r, c));
        }
    }

    #[test]
    fn spmm_relu_gradients_match_numeric() {
        let mut rng = seeded(2);
        let adj = Rc::new(CsrMatrix::from_coo(
            3,
            3,
            vec![(0, 1, 0.5), (1, 0, 0.5), (1, 2, 0.5), (2, 2, 1.0)],
        ));
        let x = random_matrix(3, 3, &mut rng);
        let labels = Rc::new(vec![2u32, 0, 1]);

        let run = |xm: &Matrix, want_grad: bool| -> (f32, Option<Matrix>) {
            let mut t = Tape::new();
            let a = t.adjacency(adj.clone());
            let vx = if want_grad { t.param(xm.clone()) } else { t.constant(xm.clone()) };
            let h = t.spmm(a, vx);
            let h = t.relu(h);
            let l = t.softmax_ce(h, labels.clone());
            t.backward(l);
            let g = if want_grad { Some(t.grad(vx).unwrap().clone()) } else { None };
            (t.scalar(l), g)
        };
        let (_, g) = run(&x, true);
        let g = g.unwrap();
        for (r, c) in [(0, 0), (1, 1), (2, 2), (0, 2)] {
            let n = numeric_grad(&x, r, c, |m| run(m, false).0, 1e-3);
            assert!((g.get(r, c) - n).abs() < 1e-2, "x[{r},{c}]: {} vs {n}", g.get(r, c));
        }
    }

    #[test]
    fn gather_meanpool_gradients_match_numeric() {
        let mut rng = seeded(3);
        let x = random_matrix(4, 3, &mut rng);
        let rows = Rc::new(vec![0u32, 2, 2, 3, 1, 0]);
        let offsets = Rc::new(vec![0usize, 2, 4, 6]);
        let labels = Rc::new(vec![0u32, 1, 2]);

        let run = |xm: &Matrix, want_grad: bool| -> (f32, Option<Matrix>) {
            let mut t = Tape::new();
            let vx = if want_grad { t.param(xm.clone()) } else { t.constant(xm.clone()) };
            let g = t.gather(vx, rows.clone());
            let p = t.mean_pool(g, offsets.clone());
            let l = t.softmax_ce(p, labels.clone());
            t.backward(l);
            let gr = if want_grad { Some(t.grad(vx).unwrap().clone()) } else { None };
            (t.scalar(l), gr)
        };
        let (_, g) = run(&x, true);
        let g = g.unwrap();
        for (r, c) in [(0, 0), (2, 1), (3, 2)] {
            let n = numeric_grad(&x, r, c, |m| run(m, false).0, 1e-3);
            assert!((g.get(r, c) - n).abs() < 1e-2, "x[{r},{c}]: {} vs {n}", g.get(r, c));
        }
    }

    #[test]
    fn bias_and_l2_gradients() {
        let mut rng = seeded(4);
        let x = random_matrix(3, 2, &mut rng);
        let bias = random_matrix(1, 2, &mut rng);
        let labels = Rc::new(vec![0u32, 1, 1]);

        let run = |bm: &Matrix, want_grad: bool| -> (f32, Option<Matrix>) {
            let mut t = Tape::new();
            let vx = t.constant(x.clone());
            let vb = if want_grad { t.param(bm.clone()) } else { t.constant(bm.clone()) };
            let h = t.add_bias(vx, vb);
            let ce = t.softmax_ce(h, labels.clone());
            let reg = t.l2(vb);
            let reg = t.scale(reg, 0.1);
            let l = t.add(ce, reg);
            t.backward(l);
            let g = if want_grad { Some(t.grad(vb).unwrap().clone()) } else { None };
            (t.scalar(l), g)
        };
        let (_, g) = run(&bias, true);
        let g = g.unwrap();
        for c in 0..2 {
            let n = numeric_grad(&bias, 0, c, |m| run(m, false).0, 1e-3);
            assert!((g.get(0, c) - n).abs() < 1e-2, "bias[{c}]: {} vs {n}", g.get(0, c));
        }
    }

    #[test]
    fn scatter_sum_gradients_match_numeric() {
        let mut rng = seeded(9);
        let a = random_matrix(2, 3, &mut rng);
        let b = random_matrix(3, 3, &mut rng);
        let rows_a = Rc::new(vec![0u32, 2]);
        let rows_b = Rc::new(vec![1u32, 2, 0]);
        let labels = Rc::new(vec![0u32, 1, 2, 0]);

        let run = |am: &Matrix, bm: &Matrix, grad_a: bool| -> (f32, Option<Matrix>) {
            let mut t = Tape::new();
            let va = if grad_a { t.param(am.clone()) } else { t.constant(am.clone()) };
            let vb = t.param(bm.clone());
            let s = t.scatter_sum(vec![(va, rows_a.clone()), (vb, rows_b.clone())], 4);
            let l = t.softmax_ce(s, labels.clone());
            t.backward(l);
            let g = if grad_a { Some(t.grad(va).unwrap().clone()) } else { None };
            (t.scalar(l), g)
        };
        let (_, g) = run(&a, &b, true);
        let g = g.unwrap();
        for (r, c) in [(0, 0), (1, 2)] {
            let n = numeric_grad(&a, r, c, |m| run(m, &b, false).0, 1e-3);
            assert!((g.get(r, c) - n).abs() < 1e-2, "a[{r},{c}]: {} vs {n}", g.get(r, c));
        }
    }

    #[test]
    fn weighted_ce_reduces_to_unweighted_with_unit_weights() {
        let mut rng = seeded(5);
        let x = random_matrix(4, 3, &mut rng);
        let labels = Rc::new(vec![0u32, 1, 2, 1]);
        let mut t1 = Tape::new();
        let v1 = t1.constant(x.clone());
        let l1 = t1.softmax_ce(v1, labels.clone());
        let mut t2 = Tape::new();
        let v2 = t2.constant(x.clone());
        let l2 = t2.softmax_ce_weighted(v2, labels, Some(&[1.0; 4]));
        assert!((t1.scalar(l1) - t2.scalar(l2)).abs() < 1e-6);
    }

    #[test]
    fn elementwise_and_reduction_gradients_match_numeric() {
        // Compose the LP-style ops: slice, sin/cos, mul, row_sum, sqrt,
        // softplus, add_scalar, sum_all.
        let mut rng = seeded(10);
        let x = random_matrix(3, 4, &mut rng);
        let run = |xm: &Matrix, want: bool| -> (f32, Option<Matrix>) {
            let mut t = Tape::new();
            let v = if want { t.param(xm.clone()) } else { t.constant(xm.clone()) };
            let left = t.slice_cols(v, 0, 2);
            let right = t.slice_cols(v, 2, 4);
            let s = t.sin(left);
            let c = t.cos(right);
            let m = t.mul(s, c);
            let rs = t.row_sum(m);
            let rs = t.add_scalar(rs, 2.0); // keep sqrt away from 0
            let sq = t.sqrt(rs);
            let sp = t.softplus(sq);
            let l = t.sum_all(sp);
            t.backward(l);
            let g = if want { Some(t.grad(v).unwrap().clone()) } else { None };
            (t.scalar(l), g)
        };
        let (_, g) = run(&x, true);
        let g = g.unwrap();
        for (r, c) in [(0, 0), (1, 2), (2, 3), (0, 1)] {
            let n = numeric_grad(&x, r, c, |m| run(m, false).0, 1e-3);
            assert!((g.get(r, c) - n).abs() < 5e-2, "x[{r},{c}]: {} vs {n}", g.get(r, c));
        }
    }

    #[test]
    fn sub_and_mean_all() {
        let a = Matrix::filled(2, 2, 5.0);
        let b = Matrix::filled(2, 2, 3.0);
        let mut t = Tape::new();
        let va = t.constant(a);
        let vb = t.constant(b);
        let d = t.sub(va, vb);
        let m = t.mean_all(d);
        assert!((t.scalar(m) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        let mut rng = seeded(6);
        let x = random_matrix(2, 2, &mut rng);
        let mut t = Tape::new();
        let v = t.param(x.clone());
        let d = t.dropout(v, 0.0, &mut rng);
        assert_eq!(v, d);
    }

    #[test]
    fn dropout_mask_scales_gradient() {
        let mut rng = seeded(7);
        let x = Matrix::filled(10, 10, 1.0);
        let mut t = Tape::new();
        let v = t.param(x);
        let d = t.dropout(v, 0.5, &mut rng);
        let l = t.l2(d);
        t.backward(l);
        let g = t.grad(v).unwrap();
        // Gradient entries are either 0 (dropped) or x * scale^2 = 4.
        for &gv in g.as_slice() {
            assert!(gv == 0.0 || (gv - 4.0).abs() < 1e-5, "unexpected grad {gv}");
        }
    }

    #[test]
    fn training_loop_decreases_loss() {
        // Tiny logistic regression sanity check: loss must fall.
        let mut rng = seeded(8);
        let x = random_matrix(20, 4, &mut rng);
        let labels: Vec<u32> = (0..20).map(|i| (i % 3) as u32).collect();
        let labels = Rc::new(labels);
        let mut w = random_matrix(4, 3, &mut rng);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..50 {
            let mut t = Tape::new();
            let vx = t.constant(x.clone());
            let vw = t.param(w.clone());
            let out = t.matmul(vx, vw);
            let l = t.softmax_ce(out, labels.clone());
            t.backward(l);
            last = t.scalar(l);
            first.get_or_insert(last);
            let g = t.take_grad(vw).unwrap();
            w.axpy(-0.5, &g);
        }
        assert!(last < first.unwrap() * 0.9, "loss did not decrease: {first:?} -> {last}");
    }
}
