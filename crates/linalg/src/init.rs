//! Weight initialisation.
//!
//! The paper's evaluation setup states: "Node features are initialized
//! randomly using Xavier weight initialization in all experiments." These
//! helpers provide seeded Xavier (Glorot) initialisation used for both node
//! feature tables and layer weights.

use rand::Rng;

use crate::matrix::Matrix;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

/// Xavier/Glorot normal: `N(0, 2 / (fan_in + fan_out))` via Box–Muller.
pub fn xavier_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let std = (2.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| std_normal(rng) * std)
}

/// Uniform `U(low, high)`.
pub fn uniform(rows: usize, cols: usize, low: f32, high: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(low..high))
}

/// One standard-normal sample via Box–Muller.
pub fn std_normal(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = xavier_uniform(64, 64, &mut rng);
        let a = (6.0 / 128.0f32).sqrt();
        assert!(m.as_slice().iter().all(|&v| v >= -a && v < a));
    }

    #[test]
    fn xavier_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_normal(100, 100, &mut rng);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / m.len() as f32;
        let var: f32 =
            m.as_slice().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / m.len() as f32;
        let target = 2.0 / 200.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - target).abs() < target * 0.2, "var {var} target {target}");
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(7));
        let b = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
