//! Dense row-major `f32` matrices with memory accounting.
//!
//! All dense buffers used by the GML substrate go through [`Matrix`], which
//! charges its backing storage to [`crate::memtrack`] so that experiment
//! harnesses can report training memory the way the paper does.
//!
//! The matmul kernels run data-parallel over row blocks of the output once
//! the arithmetic volume crosses [`PAR_MIN_FLOPS`] (tiny shapes stay on the
//! sequential path, so they pay no scheduling overhead). Each output row is
//! produced by exactly one thread with the same per-row accumulation order
//! as the sequential kernel, so parallel and sequential results — and runs
//! on pools of any size — are bit-identical.

use crate::memtrack;
use rayon::prelude::*;
use serde::de::{self, Deserializer};
use serde::ser::{SerializeStruct, Serializer};
use serde::{Deserialize, Serialize};

/// Arithmetic volume (multiply-adds) below which the matmul/spmm kernels
/// stay sequential: at this size the work is cheaper than fork/join
/// scheduling. Shared with [`crate::csr::CsrMatrix::spmm`].
pub(crate) const PAR_MIN_FLOPS: usize = 1 << 16;

/// Number of output-row blocks to split a parallel kernel into, per worker
/// thread; >1 lets work stealing rebalance rows of uneven cost.
pub(crate) const PAR_PIECES_PER_THREAD: usize = 4;

/// Pairwise (block) summation of `f(x)` over `xs`: splits in half down to a
/// fixed base block, giving O(log n) rounding-error growth instead of the
/// O(n) of a running sum. The combine tree depends only on the length, so
/// every caller — sequential or parallel, any pool size — agrees
/// bit-for-bit.
pub(crate) fn pairwise_sum_by(xs: &[f32], f: &impl Fn(f32) -> f32) -> f32 {
    const BASE: usize = 128;
    if xs.len() <= BASE {
        xs.iter().map(|&v| f(v)).sum()
    } else {
        let mid = xs.len() / 2;
        pairwise_sum_by(&xs[..mid], f) + pairwise_sum_by(&xs[mid..], f)
    }
}

/// A dense row-major matrix of `f32`.
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        memtrack::charge(rows * cols * 4);
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        memtrack::charge(rows * cols * 4);
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Build from an existing buffer. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        memtrack::charge(data.capacity() * 4);
        Matrix { rows, cols, data }
    }

    /// Build element-wise from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// (rows, cols).
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Split `out`'s buffer into row blocks and run `kernel(first_row,
    /// block)` over them — in parallel above the flop cutoff, sequentially
    /// (as one whole block, with zero scheduling overhead) below it. Shared
    /// by the matmul kernels here and `CsrMatrix::spmm`, so cutoff and
    /// block-sizing policy live in one place.
    pub(crate) fn run_row_blocks(
        out: &mut Matrix,
        flops: usize,
        par_min_flops: usize,
        kernel: impl Fn(usize, &mut [f32]) + Sync + Send,
    ) {
        let (rows, cols) = out.shape();
        if rows == 0 || cols == 0 {
            return;
        }
        if flops < par_min_flops {
            kernel(0, &mut out.data);
            return;
        }
        let pieces = PAR_PIECES_PER_THREAD * rayon::current_num_threads();
        let block_rows = rows.div_ceil(pieces.max(1)).max(1);
        out.data
            .par_chunks_mut(block_rows * cols)
            .enumerate()
            .for_each(|(block, chunk)| kernel(block * block_rows, chunk));
    }

    /// ikj kernel for rows `r0..` of `self @ other`, writing into `out_chunk`.
    fn matmul_block(&self, other: &Matrix, r0: usize, out_chunk: &mut [f32]) {
        let n = other.cols;
        for (i, out_row) in out_chunk.chunks_mut(n).enumerate() {
            let a_row = self.row(r0 + i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// `self @ other` (naive ikj kernel, row-block parallel; adequate at
    /// reproduction scale).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.matmul_impl(other, PAR_MIN_FLOPS)
    }

    pub(crate) fn matmul_impl(&self, other: &Matrix, par_min_flops: usize) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let flops = self.rows * self.cols * other.cols;
        Self::run_row_blocks(&mut out, flops, par_min_flops, |r0, chunk| {
            self.matmul_block(other, r0, chunk)
        });
        out
    }

    /// Kernel for output rows `i0..` of `selfᵀ @ other` (output row `i` is
    /// column `i` of `self`): accumulates over `self.rows` in the same order
    /// as the sequential loop, restricted to one column block.
    fn matmul_tn_block(&self, other: &Matrix, i0: usize, out_chunk: &mut [f32]) {
        let n = other.cols;
        let i1 = i0 + out_chunk.len() / n;
        for r in 0..self.rows {
            let a_row = &self.row(r)[i0..i1];
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out_chunk[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// `selfᵀ @ other`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        self.matmul_tn_impl(other, PAR_MIN_FLOPS)
    }

    pub(crate) fn matmul_tn_impl(&self, other: &Matrix, par_min_flops: usize) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        let flops = self.rows * self.cols * other.cols;
        Self::run_row_blocks(&mut out, flops, par_min_flops, |i0, chunk| {
            self.matmul_tn_block(other, i0, chunk)
        });
        out
    }

    /// Kernel for rows `i0..` of `self @ otherᵀ`: independent dot products.
    fn matmul_nt_block(&self, other: &Matrix, i0: usize, out_chunk: &mut [f32]) {
        let m = other.rows;
        for (i, out_row) in out_chunk.chunks_mut(m).enumerate() {
            let a_row = self.row(i0 + i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
    }

    /// `self @ otherᵀ`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        self.matmul_nt_impl(other, PAR_MIN_FLOPS)
    }

    pub(crate) fn matmul_nt_impl(&self, other: &Matrix, par_min_flops: usize) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        let flops = self.rows * self.cols * other.rows;
        Self::run_row_blocks(&mut out, flops, par_min_flops, |i0, chunk| {
            self.matmul_nt_block(other, i0, chunk)
        });
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise in-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise in-place scaling.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Per-row argmax (ties resolve to the lowest index).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0usize;
                let mut best_v = f32::NEG_INFINITY;
                for (i, &v) in row.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Frobenius norm, accumulated by pairwise (block) summation so the
    /// result is stable in `f32` and identical for every pool size.
    pub fn frobenius_norm(&self) -> f32 {
        pairwise_sum_by(&self.data, &|v| v * v).sqrt()
    }

    /// Sum of all elements, accumulated by pairwise (block) summation.
    pub fn sum(&self) -> f32 {
        pairwise_sum_by(&self.data, &|v| v)
    }

    /// Copy the rows indexed by `rows` into a new matrix.
    pub fn gather_rows(&self, rows: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r as usize));
        }
        out
    }

    /// Euclidean distance between two rows of (possibly different) matrices.
    pub fn row_l2(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum::<f32>().sqrt()
    }

    /// Dot product of two row slices.
    pub fn row_dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(&x, &y)| x * y).sum()
    }

    /// Logical size of the backing buffer in bytes, as charged to memtrack.
    pub fn nbytes(&self) -> usize {
        self.data.capacity() * 4
    }
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Matrix::from_vec(self.rows, self.cols, self.data.clone())
    }
}

impl Drop for Matrix {
    fn drop(&mut self) {
        memtrack::discharge(self.data.capacity() * 4);
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl PartialEq for Matrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl Serialize for Matrix {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("Matrix", 3)?;
        st.serialize_field("rows", &self.rows)?;
        st.serialize_field("cols", &self.cols)?;
        st.serialize_field("data", &self.data)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for Matrix {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Raw {
            rows: usize,
            cols: usize,
            data: Vec<f32>,
        }
        let raw = Raw::deserialize(deserializer)?;
        if raw.data.len() != raw.rows * raw.cols {
            return Err(de::Error::custom("matrix buffer size mismatch"));
        }
        Ok(Matrix::from_vec(raw.rows, raw.cols, raw.data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let via_tn = a.matmul_tn(&b);
        let via_t = a.transpose().matmul(&b);
        assert_eq!(via_tn, via_t);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, vec![1.0; 12]);
        let via_nt = a.matmul_nt(&b);
        let via_t = a.matmul(&b.transpose());
        assert_eq!(via_nt, via_t);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let a = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.5, 2.0, -1.0, 1.0]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn gather_rows_copies_selected() {
        let a = Matrix::from_fn(4, 2, |r, _| r as f32);
        let g = a.gather_rows(&[3, 1]);
        assert_eq!(g.as_slice(), &[3.0, 3.0, 1.0, 1.0]);
    }

    #[test]
    fn memtrack_charged_and_released() {
        // Other tests allocate concurrently, so retry until a quiet window.
        let ok = (0..50).any(|_| {
            let before = crate::memtrack::live_bytes();
            let m = Matrix::zeros(100, 100);
            let charged = crate::memtrack::live_bytes() >= before + 100 * 100 * 4;
            drop(m);
            charged && crate::memtrack::live_bytes() == before
        });
        assert!(ok, "memtrack never observed a balanced charge/discharge");
    }

    #[test]
    fn serde_roundtrip() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let json = serde_json::to_string(&a).unwrap();
        let b: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matmul_bitwise_equals_sequential_above_cutoff() {
        // 96x96x96 ≈ 884k flops: well above PAR_MIN_FLOPS, so the parallel
        // row-block path runs; it must agree with the forced-sequential
        // kernel exactly, not just within tolerance.
        let a = Matrix::from_fn(96, 96, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(96, 96, |r, c| ((r * 5 + c * 17) % 11) as f32 - 5.0);
        assert_eq!(a.matmul_impl(&b, 0), a.matmul_impl(&b, usize::MAX));
        assert_eq!(a.matmul_tn_impl(&b, 0), a.matmul_tn_impl(&b, usize::MAX));
        assert_eq!(a.matmul_nt_impl(&b, 0), a.matmul_nt_impl(&b, usize::MAX));
    }

    #[test]
    fn parallel_matmul_on_dedicated_pools_is_identical() {
        let a = Matrix::from_fn(64, 48, |r, c| ((r * 3 + c) % 7) as f32 * 0.25 - 0.5);
        let b = Matrix::from_fn(48, 40, |r, c| ((r + c * 3) % 5) as f32 * 0.5 - 1.0);
        let p1 = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let p4 = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let r1 = p1.install(|| a.matmul_impl(&b, 0));
        let r4 = p4.install(|| a.matmul_impl(&b, 0));
        assert_eq!(r1, r4);
    }

    #[test]
    fn pairwise_sum_is_tight_against_f64_reference() {
        let data: Vec<f32> = (0..200_000).map(|i| ((i % 7) as f32) * 0.01 + 0.001).collect();
        let reference: f64 = data.iter().map(|&v| v as f64).sum();
        let m = Matrix::from_vec(1000, 200, data);
        let pairwise = m.sum() as f64;
        let rel = ((pairwise - reference) / reference).abs();
        assert!(rel < 1e-6, "pairwise sum drifted: rel err {rel}");
        let fro_ref: f64 =
            m.as_slice().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt();
        let fro = m.frobenius_norm() as f64;
        assert!(((fro - fro_ref) / fro_ref).abs() < 1e-6);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert!(a.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
        a.scale_assign(2.0);
        assert!(a.as_slice().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }
}
