//! Bounded in-memory access log: one record per completed request,
//! oldest evicted first — the wire-level sibling of the server's
//! slow-query log.

use std::collections::VecDeque;

use kgnet_sync::profile::SyncSite;
use kgnet_sync::tracked::lock_tracked;
use kgnet_sync::Mutex;

/// Contention site for the access-log ring (every request thread appends
/// one record through this lock).
static ACCESS_LOG_SITE: SyncSite = SyncSite::new("http.access_log");

/// One completed request, as the access log retains it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRecord {
    /// Request id — echoed from `X-Request-Id` or frontend-assigned. The
    /// same id is tagged onto the request's root trace span.
    pub request_id: String,
    /// Request method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response status.
    pub status: u16,
    /// Request bytes consumed (head + body).
    pub bytes_in: u64,
    /// Response bytes written (head + body).
    pub bytes_out: u64,
    /// First parsed byte to response flush, in nanoseconds.
    pub latency_nanos: u64,
}

/// Bounded ring of [`AccessRecord`]s.
pub struct AccessLog {
    ring: Mutex<VecDeque<AccessRecord>>,
    capacity: usize,
}

impl AccessLog {
    /// New log retaining at most `capacity` records.
    pub fn new(capacity: usize) -> AccessLog {
        AccessLog { ring: Mutex::new(VecDeque::new()), capacity: capacity.max(1) }
    }

    /// Append one record, evicting the oldest at capacity.
    pub fn record(&self, record: AccessRecord) {
        let mut ring = lock_tracked(&self.ring, &ACCESS_LOG_SITE);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Copy of every retained record, oldest first.
    pub fn snapshot(&self) -> Vec<AccessRecord> {
        lock_tracked(&self.ring, &ACCESS_LOG_SITE).iter().cloned().collect()
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        lock_tracked(&self.ring, &ACCESS_LOG_SITE).len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str) -> AccessRecord {
        AccessRecord {
            request_id: id.to_owned(),
            method: "GET".to_owned(),
            path: "/metrics".to_owned(),
            status: 200,
            bytes_in: 40,
            bytes_out: 900,
            latency_nanos: 1_000,
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let log = AccessLog::new(2);
        assert!(log.is_empty());
        for id in ["a", "b", "c"] {
            log.record(record(id));
        }
        let ids: Vec<String> = log.snapshot().into_iter().map(|r| r.request_id).collect();
        assert_eq!(ids, vec!["b", "c"]);
        assert_eq!(log.len(), 2);
    }
}
