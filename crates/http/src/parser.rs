//! Incremental HTTP/1.1 request parsing over a growing byte buffer.
//!
//! The connection loop appends whatever it reads into one buffer and asks
//! [`try_parse`] after every read: `Ok(None)` means "keep reading",
//! `Ok(Some((request, consumed)))` yields one complete request plus the
//! byte count to drain (pipelined requests simply stay in the buffer for
//! the next call), and `Err` is a terminal protocol violation the caller
//! answers with a 4xx before closing. Limits are enforced *while* data
//! accumulates — an oversized head or declared body fails as soon as the
//! limit is crossed, not after the peer has streamed the whole thing.

/// Size limits the parser enforces incrementally.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Cap on the request head (request line + headers, bytes).
    pub max_head_bytes: usize,
    /// Cap on the declared `Content-Length` (bytes).
    pub max_body_bytes: usize,
}

/// Terminal request-parsing failures, each mapping to one 4xx status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Syntactically invalid request line, header, or length field.
    Malformed(&'static str),
    /// The head outgrew [`Limits::max_head_bytes`] without terminating.
    HeadTooLarge,
    /// The declared body exceeds [`Limits::max_body_bytes`].
    BodyTooLarge,
}

impl ParseError {
    /// The HTTP status this failure is answered with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Malformed(_) => 400,
            ParseError::HeadTooLarge => 431,
            ParseError::BodyTooLarge => 413,
        }
    }

    /// Human-readable reason for the error body.
    pub fn message(&self) -> String {
        match self {
            ParseError::Malformed(why) => format!("malformed request: {why}"),
            ParseError::HeadTooLarge => "request head exceeds the configured limit".to_owned(),
            ParseError::BodyTooLarge => "request body exceeds the configured limit".to_owned(),
        }
    }
}

/// One parsed request. Header names are lower-cased at parse time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, starting with `/` (query strings are not split).
    pub path: String,
    /// `(lower-cased name, trimmed value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body (`Content-Length` bytes; empty without the header).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (case-insensitive lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// True when the client asked for the connection to close after this
    /// response (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Try to parse one complete request from the front of `buf`. See the
/// module docs for the three-way contract.
pub fn try_parse(buf: &[u8], limits: &Limits) -> Result<Option<(Request, usize)>, ParseError> {
    let Some(head_end) = find(buf, b"\r\n\r\n") else {
        // No terminator yet: fail fast once the accumulated head can no
        // longer fit the limit, otherwise wait for more bytes.
        if buf.len() > limits.max_head_bytes {
            return Err(ParseError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_end > limits.max_head_bytes {
        return Err(ParseError::HeadTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ParseError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(ParseError::Malformed("request line")),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed("header line without a colon"));
        };
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(ParseError::Malformed("header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v.parse::<usize>().map_err(|_| ParseError::Malformed("content-length"))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(ParseError::BodyTooLarge);
    }
    let body_start = head_end + 4;
    let Some(body) = buf.get(body_start..body_start + content_length) else {
        return Ok(None);
    };
    let request =
        Request { method: method.to_owned(), path: path.to_owned(), headers, body: body.to_vec() };
    Ok(Some((request, body_start + content_length)))
}

/// First index of `needle` in `haystack`.
fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: Limits = Limits { max_head_bytes: 256, max_body_bytes: 64 };

    #[test]
    fn parses_a_complete_request_and_reports_consumption() {
        let wire =
            b"POST /sparql HTTP/1.1\r\nContent-Length: 5\r\nX-Request-Id: r1\r\n\r\nhelloGET /next";
        let (req, consumed) = try_parse(wire, &LIMITS).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sparql");
        assert_eq!(req.header("x-request-id"), Some("r1"));
        assert_eq!(req.header("X-REQUEST-ID"), Some("r1"));
        assert_eq!(req.body, b"hello");
        assert_eq!(&wire[consumed..], b"GET /next", "pipelined tail stays in the buffer");
        assert!(!req.wants_close());
    }

    #[test]
    fn incomplete_head_and_body_ask_for_more() {
        assert!(try_parse(b"GET /metrics HTTP/1.1\r\n", &LIMITS).unwrap().is_none());
        let partial_body = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nonly4";
        assert!(try_parse(partial_body, &LIMITS).unwrap().is_none());
        assert!(try_parse(b"", &LIMITS).unwrap().is_none());
    }

    #[test]
    fn limits_fail_fast() {
        // Head limit trips before a terminator ever arrives.
        let mut endless = b"GET / HTTP/1.1\r\n".to_vec();
        endless.extend(std::iter::repeat_n(b'a', 300));
        assert_eq!(try_parse(&endless, &LIMITS), Err(ParseError::HeadTooLarge));
        // Declared body over the cap is rejected from the head alone.
        let big = b"POST /x HTTP/1.1\r\nContent-Length: 100000\r\n\r\n";
        assert_eq!(try_parse(big, &LIMITS), Err(ParseError::BodyTooLarge));
        assert_eq!(ParseError::BodyTooLarge.status(), 413);
        assert_eq!(ParseError::HeadTooLarge.status(), 431);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for wire in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / HTTP/0.9\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: soon\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
        ] {
            let err = try_parse(wire, &LIMITS).unwrap_err();
            assert_eq!(err.status(), 400, "{wire:?} -> {err:?}");
        }
    }

    #[test]
    fn connection_close_is_honoured() {
        let wire = b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n";
        let (req, _) = try_parse(wire, &LIMITS).unwrap().unwrap();
        assert!(req.wants_close());
    }
}
