//! A minimal blocking HTTP/1.1 client, just enough to talk to the
//! frontend: used by the integration tests, the `metrics_drift` CI gate
//! (scraping `/metrics` over the wire) and the over-the-wire bench mode.
//! Keep-alive: one [`Client`] can issue many requests over one
//! connection.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// `(lower-cased name, trimmed value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Response {
    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First value of header `name` (case-insensitive lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// A persistent connection to one frontend.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr` with sane timeouts for a loopback peer.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Issue one request and read the full response. `headers` are sent
    /// verbatim on top of the `Host` and `Content-Length` the client
    /// always writes.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<Response> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: kgnet\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// `GET path` over this connection.
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.request("GET", path, &[], b"")
    }

    /// `POST path` with `body` over this connection.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<Response> {
        self.request("POST", path, &[], body)
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let mut buf = Vec::new();
        let head_end = loop {
            if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before the response head",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status =
            status_line.split(' ').nth(1).and_then(|s| s.parse::<u16>().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line: {status_line}"),
                )
            })?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.to_ascii_lowercase(), v.trim().to_owned()))
            .collect();
        let content_length = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        let mut body = buf[head_end + 4..].to_vec();
        while body.len() < content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            body.extend_from_slice(&chunk[..n]);
        }
        body.truncate(content_length);
        Ok(Response { status, headers, body })
    }
}

/// One-shot `GET` on a fresh connection.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    Client::connect(addr)?.get(path)
}

/// One-shot `POST` on a fresh connection.
pub fn post(addr: SocketAddr, path: &str, body: &[u8]) -> io::Result<Response> {
    Client::connect(addr)?.post(path, body)
}
