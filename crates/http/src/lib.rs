//! # kgnet-http
//!
//! Wire-level operational surface: a dependency-free HTTP/1.1 frontend
//! over one [`KgServer`]. The whole serving stack below this crate is
//! in-process; this is the one place the platform touches a socket (a
//! repo lint, `net-boundary`, enforces that), exposing:
//!
//! | Endpoint | What it serves |
//! |---|---|
//! | `GET /metrics` | Prometheus text exposition of the full catalog |
//! | `GET /metrics.json` | The same catalog as JSON |
//! | `GET /debug` | The human-readable debug report |
//! | `GET /healthz` | Liveness (always 200 while the process serves) |
//! | `GET /readyz` | Readiness: store loaded, queue headroom, not draining |
//! | `GET /slowlog` | Retained slow queries |
//! | `GET /traces` | Drained span trees, tags included |
//! | `GET /accesslog` | The bounded access-log ring |
//! | `POST /sparql` | SPARQL / SPARQL-ML SELECT (body = query text) |
//! | `POST /similar` | ANN similarity: `{"model","node","k"}` |
//!
//! Design, deliberately boring: a blocking accept loop hands each
//! connection to its own thread, capped by
//! [`HttpConfig::max_connections`] (over-limit connections get an
//! immediate 503 and a `kgnet_http_rejected_over_limit_total` bump); an
//! incremental parser enforces head/body size limits and a per-request
//! read timeout; responses are written with `Content-Length`, keep-alive
//! by default. Every request gets a request id (an incoming
//! `X-Request-Id` is respected, otherwise one is assigned), echoed on
//! the response, tagged onto the root `http.request` trace span and
//! recorded — with status, byte counts and latency — in a bounded
//! access-log ring. [`HttpServer::shutdown`] drains gracefully:
//! in-flight requests complete, new connections stop being accepted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accesslog;
pub mod client;
mod parser;
mod response;
mod router;

pub use accesslog::{AccessLog, AccessRecord};
pub use client::{Client, Response};

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kgnet_server::KgServer;
use kgnet_sync::atomic::Ordering;
use kgnet_sync::thread;

use parser::{Limits, ParseError};
use router::AppState;

/// Frontend tuning knobs.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`HttpServer::addr`] for the resolved one).
    pub addr: String,
    /// Connections served concurrently; the accept loop answers anything
    /// beyond this with an immediate 503.
    pub max_connections: usize,
    /// Cap on a request head (request line + headers, bytes) — 431 beyond.
    pub max_head_bytes: usize,
    /// Cap on a request body (bytes) — 413 beyond.
    pub max_body_bytes: usize,
    /// Budget for one request to arrive in full once its first byte is
    /// read (slow-loris guard, 408 beyond); also the idle keep-alive
    /// timeout after which a silent connection is closed.
    pub read_timeout_millis: u64,
    /// Records retained in the access-log ring.
    pub access_log_capacity: usize,
    /// Idle [`kgnet_server::ReadSession`]s retained for `POST /sparql`
    /// and `POST /similar` between requests.
    pub session_pool_capacity: usize,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_connections: 64,
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            read_timeout_millis: 5_000,
            access_log_capacity: 256,
            session_pool_capacity: 8,
        }
    }
}

/// A running frontend: the accept loop plus per-connection threads.
/// Dropping the handle shuts it down gracefully (prefer the explicit
/// [`shutdown`](Self::shutdown) so the drain is visible at the call site).
pub struct HttpServer {
    local_addr: SocketAddr,
    state: Arc<AppState>,
    accept: Option<thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `config.addr` and start serving `server` in background
    /// threads. Returns as soon as the listener is live.
    pub fn start(server: Arc<KgServer>, config: HttpConfig) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(AppState::new(server, config));
        let accept_state = Arc::clone(&state);
        let accept = thread::Builder::new()
            .name("kgnet-http-accept".to_owned())
            .spawn(move || accept_loop(listener, accept_state))?;
        Ok(HttpServer { local_addr, state, accept: Some(accept) })
    }

    /// The resolved bind address (the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Copy of the access-log ring, oldest record first (also served at
    /// `GET /accesslog`).
    pub fn access_log(&self) -> Vec<AccessRecord> {
        self.state.access_log.snapshot()
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> usize {
        self.state.active.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish
    /// (bounded by a drain deadline), then return. Idempotent.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.state.drain.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop sits in a blocking `accept`; one throwaway
        // connection wakes it so it can observe the drain flag.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(500));
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.state.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, state: Arc<AppState>) {
    for conn in listener.incoming() {
        // A connection whose handshake completed before the drain flag
        // rose may only reach userspace now — it is ahead of shutdown's
        // wake-up connection in the backlog, so serve it (its handler
        // answers with `Connection: close`) and break afterwards rather
        // than reset a request already on the wire.
        let draining = state.drain.load(Ordering::SeqCst);
        let Ok(mut stream) = conn else {
            if draining {
                break;
            }
            continue;
        };
        // Admission: reserve a slot first; losing the race means the
        // limit is already spent, so answer 503 inline and move on —
        // the accept loop itself never blocks on a slow client thanks
        // to the write being tiny (fits any socket buffer).
        if state.active.fetch_add(1, Ordering::SeqCst) >= state.config.max_connections {
            state.active.fetch_sub(1, Ordering::SeqCst);
            state.metrics.http_rejected_over_limit.inc();
            state.metrics.http_responses_5xx.inc();
            let _ = response::write_response(
                &mut stream,
                503,
                "text/plain; charset=utf-8",
                None,
                b"connection limit reached\n",
                true,
            );
            // Shutdown's wake-up connection can land here when the last
            // slot is still being released — skipping the drain check
            // below would leave the loop blocked in `accept` forever.
            if draining {
                break;
            }
            continue;
        }
        state.metrics.http_active_connections.add(1);
        let conn_state = Arc::clone(&state);
        let spawned = thread::Builder::new().name("kgnet-http-conn".to_owned()).spawn(move || {
            handle_connection(stream, &conn_state);
            conn_state.active.fetch_sub(1, Ordering::SeqCst);
            conn_state.metrics.http_active_connections.add(-1);
        });
        if spawned.is_err() {
            state.active.fetch_sub(1, Ordering::SeqCst);
            state.metrics.http_active_connections.add(-1);
        }
        if draining {
            break;
        }
    }
}

/// Serve one connection: read requests off it (keep-alive, pipelining
/// included) until the peer closes, a protocol error ends it, or a drain
/// finds it idle.
fn handle_connection(mut stream: TcpStream, state: &AppState) {
    let _ = stream.set_nodelay(true);
    let read_timeout = Duration::from_millis(state.config.read_timeout_millis.max(1));
    // Short read ticks so an idle keep-alive connection notices a drain
    // promptly instead of sleeping out its full timeout.
    let tick = read_timeout.min(Duration::from_millis(50));
    if stream.set_read_timeout(Some(tick)).is_err() {
        return;
    }
    let limits = Limits {
        max_head_bytes: state.config.max_head_bytes,
        max_body_bytes: state.config.max_body_bytes,
    };
    let mut buf: Vec<u8> = Vec::new();
    loop {
        // Accumulate one complete request (or die trying).
        let t0 = Instant::now();
        let (request, consumed) = loop {
            match parser::try_parse(&buf, &limits) {
                Ok(Some(parsed)) => break parsed,
                Ok(None) => {}
                Err(e) => {
                    reject(state, &mut stream, e);
                    return;
                }
            }
            if t0.elapsed() >= read_timeout {
                if buf.is_empty() {
                    return; // idle keep-alive expiry: clean close
                }
                // Partial request that never completed: slow-loris or a
                // stalled peer. Answer 408 and hang up.
                state.metrics.http_parse_errors.inc();
                state.metrics.http_responses_4xx.inc();
                let _ = response::write_response(
                    &mut stream,
                    408,
                    "text/plain; charset=utf-8",
                    None,
                    b"request did not arrive in time\n",
                    true,
                );
                return;
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    if !buf.is_empty() {
                        // EOF mid-request: truncated on the wire.
                        state.metrics.http_parse_errors.inc();
                    }
                    return;
                }
                Ok(n) => {
                    state.metrics.http_bytes_in.add(n as u64);
                    buf.extend_from_slice(&chunk[..n]);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Idle-at-drain close only AFTER a read confirmed
                    // nothing is pending: request bytes may already sit
                    // in the socket buffer while `buf` is still empty,
                    // and those are in flight, not idle.
                    if state.drain.load(Ordering::SeqCst) && buf.is_empty() {
                        return;
                    }
                    continue;
                }
                Err(_) => return,
            }
        };
        buf.drain(..consumed);
        let close = state.drain.load(Ordering::SeqCst) || request.wants_close();
        if router::handle(state, &request, consumed as u64, &mut stream, close).is_err() || close {
            return;
        }
    }
}

/// Answer a terminal parse failure and count it.
fn reject(state: &AppState, stream: &mut TcpStream, e: ParseError) {
    state.metrics.http_parse_errors.inc();
    router::bump_status_class(&state.metrics, e.status());
    let _ = response::write_response(
        stream,
        e.status(),
        "text/plain; charset=utf-8",
        None,
        format!("{}\n", e.message()).as_bytes(),
        true,
    );
}
