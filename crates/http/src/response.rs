//! HTTP/1.1 response serialisation: one writer used by every path that
//! answers a request — router responses, parser-failure 4xxs and the
//! over-limit 503 alike — so headers stay consistent everywhere.

use std::io::{self, Write};

/// Reason phrase for every status this frontend emits.
pub(crate) fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialise and write one response. Returns the bytes written (headers
/// included) so callers can feed the byte counters and the access log.
pub(crate) fn write_response(
    stream: &mut dyn Write,
    status: u16,
    content_type: &str,
    request_id: Option<&str>,
    body: &[u8],
    close: bool,
) -> io::Result<u64> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    if let Some(id) = request_id {
        head.push_str("X-Request-Id: ");
        head.push_str(id);
        head.push_str("\r\n");
    }
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    Ok((head.len() + body.len()) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_carries_length_id_and_close_marker() {
        let mut wire = Vec::new();
        let n =
            write_response(&mut wire, 200, "text/plain", Some("req-9"), b"hello", true).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("X-Request-Id: req-9\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
        assert_eq!(n as usize, text.len());
    }

    #[test]
    fn optional_headers_are_omitted() {
        let mut wire = Vec::new();
        write_response(&mut wire, 404, "text/plain", None, b"nope", false).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("404 Not Found"));
        assert!(!text.contains("X-Request-Id"));
        assert!(!text.contains("Connection: close"));
    }
}
