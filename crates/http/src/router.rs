//! Endpoint routing and response rendering over one [`KgServer`].
//!
//! Every parsed request flows through [`handle`]: it assigns (or echoes)
//! the request id, opens the root `http.request` span tagged with
//! id/method/path — sessions opened by the handler on the same thread
//! nest their own spans under it — dispatches on `(method, path)`,
//! writes the response, and lands the request in the metric counters and
//! the access-log ring.

use std::io;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use kgnet_server::metrics::ServerMetrics;
use kgnet_server::{KgServer, SessionPool};
use kgnet_sparqlml::{MlError, MlOutcome};
use kgnet_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::accesslog::{AccessLog, AccessRecord};
use crate::parser::Request;
use crate::response::write_response;
use crate::HttpConfig;

/// Shared state of one frontend: the served platform plus the frontend's
/// own request-scoped machinery.
pub(crate) struct AppState {
    pub server: Arc<KgServer>,
    pub metrics: Arc<ServerMetrics>,
    pub pool: SessionPool,
    pub access_log: AccessLog,
    /// Raised by shutdown: the accept loop stops, handlers answer with
    /// `Connection: close`, idle keep-alive connections wind down.
    pub drain: AtomicBool,
    /// Connections currently open (accept-loop admission control).
    pub active: AtomicUsize,
    next_request_id: AtomicU64,
    pub config: HttpConfig,
}

impl AppState {
    pub fn new(server: Arc<KgServer>, config: HttpConfig) -> AppState {
        let metrics = server.metrics_handle();
        let pool = SessionPool::new(Arc::clone(&server), config.session_pool_capacity);
        AppState {
            server,
            metrics,
            pool,
            access_log: AccessLog::new(config.access_log_capacity),
            drain: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            next_request_id: AtomicU64::new(1),
            config,
        }
    }
}

/// Serve one parsed request end to end. `bytes_in` is the wire size of
/// the request (head + body) for the access record; `close` is decided by
/// the connection loop (drain or `Connection: close`).
pub(crate) fn handle(
    state: &AppState,
    req: &Request,
    bytes_in: u64,
    stream: &mut TcpStream,
    close: bool,
) -> io::Result<()> {
    let t0 = Instant::now();
    let request_id = match req.header("x-request-id") {
        Some(id) if !id.is_empty() => id.to_owned(),
        _ => format!("req-{}", state.next_request_id.fetch_add(1, Ordering::Relaxed)),
    };
    state.metrics.http_requests.inc();
    let (status, content_type, body) = {
        // Scoped so the root span closes (and records) before the access
        // log entry is written: a scraper reading `/accesslog` and then
        // `trace_dump()` finds a root span for every logged id.
        let mut span = state.metrics.span("http.request");
        span.tag("request_id", request_id.as_str());
        span.tag("method", req.method.as_str());
        span.tag("path", req.path.as_str());
        route(state, req)
    };
    let bytes_out = write_response(stream, status, content_type, Some(&request_id), &body, close)?;
    let latency = elapsed_nanos(t0);
    state.metrics.http_request_latency.record(latency);
    state.metrics.http_bytes_out.add(bytes_out);
    bump_status_class(&state.metrics, status);
    state.access_log.record(AccessRecord {
        request_id,
        method: req.method.clone(),
        path: req.path.clone(),
        status,
        bytes_in,
        bytes_out,
        latency_nanos: latency,
    });
    Ok(())
}

/// Count one response into its status-class counter.
pub(crate) fn bump_status_class(metrics: &ServerMetrics, status: u16) {
    match status {
        200..=299 => metrics.http_responses_2xx.inc(),
        300..=399 => metrics.http_responses_3xx.inc(),
        400..=499 => metrics.http_responses_4xx.inc(),
        _ => metrics.http_responses_5xx.inc(),
    }
}

pub(crate) fn elapsed_nanos(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

const TEXT: &str = "text/plain; charset=utf-8";
const PROMETHEUS: &str = "text/plain; version=0.0.4; charset=utf-8";
const JSON: &str = "application/json";

/// Dispatch on `(method, path)`. Pure with respect to the wire: returns
/// `(status, content type, body)` and leaves serialisation to the caller.
fn route(state: &AppState, req: &Request) -> (u16, &'static str, Vec<u8>) {
    let path = req.path.split('?').next().unwrap_or(&req.path);
    match (req.method.as_str(), path) {
        ("GET", "/metrics") => {
            (200, PROMETHEUS, state.server.metrics().render_prometheus().into_bytes())
        }
        ("GET", "/metrics.json") => (200, JSON, state.server.metrics().render_json().into_bytes()),
        ("GET", "/debug") => (200, TEXT, state.server.debug_report().into_bytes()),
        ("GET", "/healthz") => (200, TEXT, b"ok\n".to_vec()),
        ("GET", "/readyz") => readyz(state),
        ("GET", "/slowlog") => (200, JSON, slowlog_json(state).into_bytes()),
        ("GET", "/traces") => (200, JSON, traces_json(state).into_bytes()),
        ("GET", "/accesslog") => (200, JSON, accesslog_json(state).into_bytes()),
        ("POST", "/sparql") => sparql(state, req),
        ("POST", "/similar") => similar(state, req),
        (
            _,
            "/metrics" | "/metrics.json" | "/debug" | "/healthz" | "/readyz" | "/slowlog"
            | "/traces" | "/accesslog" | "/sparql" | "/similar",
        ) => (405, TEXT, format!("method {} not allowed here\n", req.method).into_bytes()),
        _ => (404, TEXT, format!("no such endpoint: {path}\n").into_bytes()),
    }
}

/// Readiness: the store must be loaded, the training queue must have
/// admission headroom, and the frontend must not be draining.
fn readyz(state: &AppState) -> (u16, &'static str, Vec<u8>) {
    let draining = state.drain.load(Ordering::SeqCst);
    let r = state.server.readiness();
    let ready = r.ready && !draining;
    let body = format!(
        "{{\"ready\":{},\"store_loaded\":{},\"queue_headroom\":{},\"draining\":{}}}\n",
        ready, r.store_loaded, r.queue_headroom, draining
    );
    (if ready { 200 } else { 503 }, JSON, body.into_bytes())
}

fn sparql(state: &AppState, req: &Request) -> (u16, &'static str, Vec<u8>) {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return (400, TEXT, b"query body is not UTF-8\n".to_vec());
    };
    if text.trim().is_empty() {
        return (400, TEXT, b"empty query body\n".to_vec());
    }
    let mut session = state.pool.checkout();
    match session.query(text) {
        Ok(MlOutcome::Rows(rows)) => {
            let mut out = String::from("{\"vars\":[");
            push_string_array(&mut out, rows.vars.iter().map(String::as_str));
            out.push_str("],\"rows\":[");
            for (i, row) in rows.rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, term) in row.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    match term {
                        Some(t) => push_json_string(&mut out, &t.to_string()),
                        None => out.push_str("null"),
                    }
                }
                out.push(']');
            }
            out.push_str("]}\n");
            (200, JSON, out.into_bytes())
        }
        Ok(other) => {
            (500, TEXT, format!("non-row outcome from a read session: {other:?}\n").into_bytes())
        }
        Err(e) => ml_error_response(e),
    }
}

fn similar(state: &AppState, req: &Request) -> (u16, &'static str, Vec<u8>) {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return (400, TEXT, b"body is not UTF-8\n".to_vec());
    };
    let Ok(value) = serde_json::from_str::<serde_json::Value>(text) else {
        return (400, TEXT, b"body is not valid JSON\n".to_vec());
    };
    let (Some(model), Some(node)) =
        (value.get("model").and_then(|v| v.as_str()), value.get("node").and_then(|v| v.as_str()))
    else {
        return (400, TEXT, b"expected {\"model\",\"node\"[,\"k\"]}\n".to_vec());
    };
    let k = value.get("k").and_then(|v| v.as_u64()).unwrap_or(10) as usize;
    let session = state.pool.checkout();
    match session.similar_nodes(model, node, k) {
        Ok(hits) => {
            let mut out = String::from("[");
            for (i, (uri, score)) in hits.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"node\":");
                push_json_string(&mut out, uri);
                out.push_str(&format!(",\"score\":{score}}}"));
            }
            out.push_str("]\n");
            (200, JSON, out.into_bytes())
        }
        Err(e) => ml_error_response(e),
    }
}

/// Client mistakes are 4xx, platform failures 5xx.
fn ml_error_response(e: MlError) -> (u16, &'static str, Vec<u8>) {
    let status = match &e {
        MlError::Sparql(_)
        | MlError::NoModel(_)
        | MlError::SelectionInfeasible
        | MlError::ReadOnly => 400,
        MlError::Train(_) | MlError::Service(_) => 500,
    };
    (status, TEXT, format!("{e}\n").into_bytes())
}

fn slowlog_json(state: &AppState) -> String {
    let mut out = String::from("[");
    for (i, q) in state.server.slow_queries().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"text\":");
        push_json_string(&mut out, &q.text);
        out.push_str(&format!(
            ",\"total_nanos\":{},\"rows\":{},\"triples_scanned\":{},\"plan\":",
            q.total_nanos, q.rows, q.triples_scanned
        ));
        push_json_string(&mut out, &q.plan);
        out.push_str(",\"profile\":");
        push_json_string(&mut out, &q.profile.render());
        out.push('}');
    }
    out.push_str("]\n");
    out
}

fn traces_json(state: &AppState) -> String {
    let mut out = String::from("[");
    for (i, root) in state.server.trace_dump().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_span_json(&mut out, root);
    }
    out.push_str("]\n");
    out
}

fn push_span_json(out: &mut String, node: &kgnet_obs::SpanNode) {
    out.push_str("{\"name\":");
    push_json_string(out, &node.name);
    out.push_str(&format!(",\"nanos\":{},\"rows\":{},\"tags\":{{", node.nanos, node.rows));
    for (i, (k, v)) in node.tags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, k);
        out.push(':');
        push_json_string(out, v);
    }
    out.push_str("},\"children\":[");
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_span_json(out, child);
    }
    out.push_str("]}");
}

fn accesslog_json(state: &AppState) -> String {
    let mut out = String::from("[");
    for (i, r) in state.access_log.snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"request_id\":");
        push_json_string(&mut out, &r.request_id);
        out.push_str(",\"method\":");
        push_json_string(&mut out, &r.method);
        out.push_str(",\"path\":");
        push_json_string(&mut out, &r.path);
        out.push_str(&format!(
            ",\"status\":{},\"bytes_in\":{},\"bytes_out\":{},\"latency_nanos\":{}}}",
            r.status, r.bytes_in, r.bytes_out, r.latency_nanos
        ));
    }
    out.push_str("]\n");
    out
}

fn push_string_array<'a>(out: &mut String, items: impl Iterator<Item = &'a str>) {
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, item);
    }
}

/// Append `s` as a JSON string literal (quotes included).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
