//! Failure-mode coverage for the frontend's incremental parser and
//! accept loop: every malformed, truncated, oversized or stalled request
//! must produce a clean 4xx (or a counted close), bump
//! `kgnet_http_parse_errors_total`, and leave the accept loop serving —
//! never a panic, never a hung connection slot.
//!
//! The raw `TcpStream` writes below are the point of the test (driving
//! the parser with wire garbage the [`kgnet_http::Client`] cannot emit);
//! test code is exempt from the `net-boundary` lint.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use kgnet_datagen::{generate_dblp, DblpConfig};
use kgnet_gml::config::GnnConfig;
use kgnet_http::{client, HttpConfig, HttpServer};
use kgnet_server::{KgServer, ServerConfig};
use kgnet_sparqlml::ManagerConfig;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn tiny_server(seed: u64) -> Arc<KgServer> {
    let (kg, _) = generate_dblp(&DblpConfig::tiny(seed));
    let config = ServerConfig {
        manager: ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() },
        ..Default::default()
    };
    Arc::new(KgServer::new(kg, config))
}

fn start(server: &Arc<KgServer>) -> HttpServer {
    let config = HttpConfig {
        max_head_bytes: 512,
        max_body_bytes: 256,
        read_timeout_millis: 300,
        ..Default::default()
    };
    HttpServer::start(Arc::clone(server), config).expect("bind loopback")
}

/// Read whatever the peer sends until EOF (bounded by the socket's read
/// timeout) and return it as text.
fn read_to_end(stream: &mut TcpStream) -> String {
    let mut out = Vec::new();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

fn wait_for(deadline_secs: u64, mut probe: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(deadline_secs);
    while Instant::now() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn wire_garbage_yields_clean_4xx_and_the_loop_survives() {
    let server = tiny_server(11);
    let http = start(&server);
    let metrics = server.metrics_handle();
    let addr = http.addr();

    // 1. Truncated request: head cut mid-line, then EOF. No response is
    //    owed; the close must be counted as a parse error.
    let before = metrics.http_parse_errors.get();
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /sparql HTTP/1.1\r\nContent-Le").unwrap();
    }
    assert!(
        wait_for(10, || metrics.http_parse_errors.get() > before),
        "truncated request never counted as a parse error"
    );

    // 2. Oversized head: headers growing past the limit draw a 431
    //    without waiting for a terminator that will never come.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /metrics HTTP/1.1\r\n").unwrap();
    let filler = format!("X-Filler: {}\r\n", "f".repeat(600));
    s.write_all(filler.as_bytes()).unwrap();
    let reply = read_to_end(&mut s);
    assert!(reply.starts_with("HTTP/1.1 431 "), "oversized head reply: {reply:.60}");

    // 3. Oversized declared body: rejected from the head alone with 413 —
    //    the server must not stream 100k bytes it will throw away.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"POST /sparql HTTP/1.1\r\nContent-Length: 100000\r\n\r\n").unwrap();
    let reply = read_to_end(&mut s);
    assert!(reply.starts_with("HTTP/1.1 413 "), "oversized body reply: {reply:.60}");

    // 4. Pipelined garbage: a valid request followed by junk in one
    //    write. The valid one is served, the junk draws a 400, and the
    //    connection closes without taking the accept loop with it.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\n\r\nTOTAL GARBAGE\r\n\r\n").unwrap();
    let reply = read_to_end(&mut s);
    assert!(reply.starts_with("HTTP/1.1 200 "), "pipelined healthz reply: {reply:.60}");
    assert!(reply.contains("HTTP/1.1 400 "), "garbage after healthz must draw a 400: {reply:.80}");

    // 5. Slow loris: a partial request trickling in slower than the
    //    read timeout is answered 408 and hung up on.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /metr").unwrap();
    let reply = read_to_end(&mut s);
    assert!(reply.starts_with("HTTP/1.1 408 "), "slow-loris reply: {reply:.60}");

    // 6. Deterministic fuzz: random byte salads never panic the server
    //    and never leak a connection slot.
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..32 {
        let len = rng.gen_range(1..200);
        let junk: Vec<u8> = (0..len).map(|_| rng.gen_range(1u8..=255)).collect();
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(&junk);
        let _ = read_to_end(&mut s);
    }

    // Every failure above was counted, and the frontend still serves.
    assert!(
        metrics.http_parse_errors.get() >= 5,
        "parse errors: {}",
        metrics.http_parse_errors.get()
    );
    let ok = client::get(addr, "/healthz").expect("frontend must still accept");
    assert_eq!(ok.status, 200);
    assert!(
        wait_for(10, || http.active_connections() == 0),
        "a failure case leaked a connection slot"
    );
    http.shutdown();
}

#[test]
fn over_limit_connections_draw_an_immediate_503() {
    let server = tiny_server(13);
    let config = HttpConfig { max_connections: 1, ..Default::default() };
    let http = HttpServer::start(Arc::clone(&server), config).expect("bind loopback");
    let metrics = server.metrics_handle();

    // Occupy the single slot with a live keep-alive connection.
    let mut holder = client::Client::connect(http.addr()).unwrap();
    assert_eq!(holder.get("/healthz").unwrap().status, 200);

    // The next connection is bounced with a 503 before routing.
    let mut s = TcpStream::connect(http.addr()).unwrap();
    let reply = read_to_end(&mut s);
    assert!(reply.starts_with("HTTP/1.1 503 "), "over-limit reply: {reply:.60}");
    assert!(metrics.http_rejected_over_limit.get() >= 1);

    // Releasing the slot restores service.
    drop(holder);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client::get(http.addr(), "/healthz") {
            Ok(r) if r.status == 200 => break,
            _ if Instant::now() >= deadline => panic!("slot never freed"),
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    http.shutdown();
}
