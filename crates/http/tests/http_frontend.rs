//! End-to-end acceptance for the wire-level operational surface: a real
//! frontend on an ephemeral loopback port, concurrent SPARQL and
//! similarity clients while training churns in the background, the
//! `/metrics` body held to the same structural rules as the in-process
//! render, readiness flipping under queue saturation, request ids
//! correlated from the access log onto root trace spans, and a graceful
//! shutdown that finishes an in-flight request.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use kgnet_datagen::{generate_dblp, DblpConfig};
use kgnet_gml::config::GnnConfig;
use kgnet_gmlaas::TrainRequest;
use kgnet_graph::{GmlTask, NcTask};
use kgnet_http::{client, Client, HttpConfig, HttpServer};
use kgnet_obs::validate_prometheus;
use kgnet_server::{JobState, KgServer, QueueConfig, ServerConfig};
use kgnet_sparqlml::ManagerConfig;

const COUNT_QUERY: &str = "PREFIX dblp: <https://www.dblp.org/> \
     SELECT (COUNT(*) AS ?n) WHERE { ?p a dblp:Publication }";

const PV_QUERY: &str = r#"
    PREFIX dblp: <https://www.dblp.org/>
    PREFIX kgnet: <https://www.kgnet.com/>
    SELECT ?title ?venue WHERE {
      ?paper a dblp:Publication .
      ?paper dblp:title ?title .
      ?paper ?NodeClassifier ?venue .
      ?NodeClassifier a kgnet:NodeClassifier .
      ?NodeClassifier kgnet:TargetNode dblp:Publication .
      ?NodeClassifier kgnet:NodeLabel dblp:publishedIn . }"#;

fn nc_request(name: &str) -> TrainRequest {
    let mut req = TrainRequest::new(
        name,
        GmlTask::NodeClassification(NcTask {
            target_type: "https://www.dblp.org/Publication".into(),
            label_predicate: "https://www.dblp.org/publishedIn".into(),
        }),
    );
    req.cfg = GnnConfig::fast_test();
    req
}

/// One Prometheus sample by exact series name (unlabelled metrics only).
fn sample(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|l| {
            let (n, v) = l.rsplit_once(' ')?;
            if n == name {
                v.parse().ok()
            } else {
                None
            }
        })
        .unwrap_or_else(|| panic!("no sample for {name}"))
}

#[test]
fn frontend_serves_queries_probes_and_traces_under_churn() {
    let (kg, _) = generate_dblp(&DblpConfig::tiny(29));
    let server = Arc::new(KgServer::new(
        kg,
        ServerConfig {
            manager: ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() },
            queue: QueueConfig { max_concurrent: 1, max_pending: 1, ..Default::default() },
            slow_query_nanos: 1,
            ..Default::default()
        },
    ));

    // A similarity model for `/similar`, trained synchronously up front.
    let (sim_model, probe_node) = {
        let mut writer = server.write_session();
        writer
            .execute(
                r#"PREFIX dblp: <https://www.dblp.org/>
                   PREFIX kgnet: <https://www.kgnet.com/>
                   INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                     {Name: 'wire-sim', GML-Task:{ TaskType: kgnet:NodeSimilarity,
                        TargetNode: dblp:Publication}})}"#,
            )
            .unwrap();
        writer.commit();
        let manager = server.manager();
        let guard = manager.read();
        let uri = guard.trainer().model_store().uris().pop().unwrap();
        let artifact = guard.trainer().model_store().get(&uri).unwrap();
        let kgnet_gmlaas::ArtifactPayload::NodeSimilarity { store } = &artifact.payload else {
            panic!("expected a similarity payload")
        };
        let probe = store.keys().next().unwrap().to_owned();
        (uri, probe)
    };

    let http = HttpServer::start(Arc::clone(&server), HttpConfig::default()).expect("bind");
    let addr = http.addr();

    // Training churns in the background while the wire traffic runs.
    let churn = server.submit_train(nc_request("churn")).unwrap();

    let handles: Vec<_> = (0..4)
        .map(|worker| {
            let similar_body =
                format!("{{\"model\":\"{sim_model}\",\"node\":\"{probe_node}\",\"k\":3}}");
            std::thread::spawn(move || {
                let mut conn = Client::connect(addr).expect("client connect");
                for round in 0..10 {
                    if (worker + round) % 2 == 0 {
                        let id = format!("client-{worker}-{round}");
                        let r = conn
                            .request(
                                "POST",
                                "/sparql",
                                &[("X-Request-Id", id.as_str())],
                                COUNT_QUERY.as_bytes(),
                            )
                            .expect("sparql over the wire");
                        assert_eq!(r.status, 200, "{}", r.text());
                        assert_eq!(r.header("x-request-id"), Some(id.as_str()), "id must echo");
                        assert!(r.text().contains("\"vars\":[\"n\"]"), "{}", r.text());
                    } else {
                        let r = conn
                            .post("/similar", similar_body.as_bytes())
                            .expect("similar over the wire");
                        assert_eq!(r.status, 200, "{}", r.text());
                        assert!(r.text().contains("\"node\":"), "{}", r.text());
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let done = server.wait(churn).unwrap();
    assert!(matches!(done.state, JobState::Done { .. }), "churn job failed: {done:?}");

    // The satellite fix: with a 1 ns capture threshold every query is
    // "slow", so the ML SELECT over the fresh model must now appear in
    // the slow-query log (text-only plan) — and therefore on `/slowlog`.
    let mut conn = Client::connect(addr).unwrap();
    let r = conn.post("/sparql", PV_QUERY.as_bytes()).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    let slowlog = conn.get("/slowlog").unwrap();
    assert_eq!(slowlog.status, 200);
    assert!(
        slowlog.text().contains("sparql-ml: no physical plan"),
        "ML SELECT missing from the slow-query log: {}",
        slowlog.text()
    );

    // The wire body passes the same structural validation as the
    // in-process render, and the frontend's own series are live.
    let scraped = conn.get("/metrics").unwrap();
    assert_eq!(scraped.status, 200);
    let body = scraped.text();
    let kinds = validate_prometheus(&body).expect("wire exposition must validate");
    assert_eq!(kinds.get("kgnet_http_requests_total").map(String::as_str), Some("counter"));
    assert!(sample(&body, "kgnet_http_requests_total") >= 41.0, "all requests counted");
    assert!(sample(&body, "kgnet_http_responses_2xx_total") >= 41.0);
    assert!(sample(&body, "kgnet_http_bytes_in_total") > 0.0);
    assert!(sample(&body, "kgnet_http_bytes_out_total") > 0.0);
    assert!(sample(&body, "kgnet_http_request_latency_nanos_count") >= 41.0);
    assert_eq!(conn.get("/healthz").unwrap().status, 200);
    assert_eq!(conn.get("/metrics.json").unwrap().status, 200);
    assert!(conn.get("/debug").unwrap().text().contains("KGNet server debug report"));

    // Readiness: 200 while the queue admits, 503 once saturated (one
    // running marathon + a full pending lane), 200 again after cancels.
    let ready = conn.get("/readyz").unwrap();
    assert_eq!(ready.status, 200, "{}", ready.text());
    let mut marathon = nc_request("marathon");
    marathon.cfg = GnnConfig { epochs: 200_000, dropout: 0.0, ..GnnConfig::fast_test() };
    let running = server.submit_train(marathon).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while !matches!(server.job(running).map(|j| j.state), Some(JobState::Running)) {
        assert!(Instant::now() < deadline, "marathon never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    let queued = server.submit_train(nc_request("overflow")).unwrap();
    let saturated = conn.get("/readyz").unwrap();
    assert_eq!(saturated.status, 503, "{}", saturated.text());
    assert!(saturated.text().contains("\"ready\":false"));
    assert!(saturated.text().contains("\"queue_headroom\":0"));
    assert!(server.cancel(queued));
    assert!(server.cancel(running));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let again = conn.get("/readyz").unwrap();
        if again.status == 200 {
            assert!(again.text().contains("\"ready\":true"));
            break;
        }
        assert!(Instant::now() < deadline, "readiness never recovered: {}", again.text());
        std::thread::sleep(Duration::from_millis(10));
    }
    server.wait(running);
    drop(conn);

    // Every access-logged request id must appear as a tag on a root
    // `http.request` span — the log and the trace tree agree on what ran.
    let records = http.access_log();
    assert!(records.len() >= 41, "access log too small: {}", records.len());
    let roots = server.trace_dump();
    for record in &records {
        assert!(
            roots.iter().any(|r| r.name == "http.request"
                && r.tag("request_id") == Some(record.request_id.as_str())
                && r.tag("path") == Some(record.path.as_str())),
            "no root span tagged for {record:?}"
        );
    }
    assert!(
        records.iter().any(|r| r.request_id.starts_with("client-")),
        "client-supplied ids must be respected"
    );

    // Graceful shutdown: a request whose body is still arriving when the
    // drain starts is finished, answered `Connection: close`, and only
    // then does shutdown return; new connections are refused after.
    let mut inflight = TcpStream::connect(addr).unwrap();
    let head = format!("POST /sparql HTTP/1.1\r\nContent-Length: {}\r\n\r\n", COUNT_QUERY.len());
    inflight.write_all(head.as_bytes()).unwrap();
    inflight.write_all(&COUNT_QUERY.as_bytes()[..10]).unwrap();
    let drain = std::thread::spawn(move || http.shutdown());
    std::thread::sleep(Duration::from_millis(200));
    inflight.write_all(&COUNT_QUERY.as_bytes()[10..]).unwrap();
    let mut reply = Vec::new();
    inflight.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let _ = std::io::Read::read_to_end(&mut inflight, &mut reply);
    let reply = String::from_utf8_lossy(&reply);
    assert!(reply.starts_with("HTTP/1.1 200 "), "in-flight request dropped: {reply:.80}");
    assert!(reply.contains("Connection: close"), "drain must announce the close: {reply:.200}");
    drain.join().expect("shutdown thread");
    assert!(client::get(addr, "/healthz").is_err(), "listener must be gone after shutdown");
    assert_eq!(server.metrics_handle().http_active_connections.get(), 0);
}
