//! Streaming vs materialised SPARQL evaluation on a DBLP-shaped graph:
//! `LIMIT k` short-circuit wins and deep-join intermediate-table savings.

use criterion::{criterion_group, criterion_main, Criterion};
use kgnet_datagen::{generate_dblp, DblpConfig};
use kgnet_rdf::sparql::ast::SelectQuery;
use kgnet_rdf::sparql::{evaluate_select, evaluate_select_materialised, parse_select};
use kgnet_rdf::RdfStore;

fn parse(text: &str) -> SelectQuery {
    parse_select(&format!("PREFIX dblp: <https://www.dblp.org/> {text}")).unwrap()
}

fn both(c: &mut Criterion, store: &RdfStore, name: &str, q: &SelectQuery) {
    c.bench_function(&format!("{name} (streaming)"), |b| {
        b.iter(|| evaluate_select(store, q).unwrap().len())
    });
    c.bench_function(&format!("{name} (materialised)"), |b| {
        b.iter(|| evaluate_select_materialised(store, q).unwrap().len())
    });
}

fn bench_limit_short_circuit(c: &mut Criterion) {
    let store = generate_dblp(&DblpConfig::small(11)).0;
    // The streaming evaluator stops the index scans after 10 join results;
    // the materialised one joins the full publication-author table first.
    let q = parse("SELECT ?p ?a WHERE { ?p a dblp:Publication . ?p dblp:authoredBy ?a } LIMIT 10");
    both(c, &store, "sparql/join_limit10", &q);

    let q = parse("SELECT ?p WHERE { ?p dblp:yearOfPublication ?y . FILTER(?y >= 2010) } LIMIT 5");
    both(c, &store, "sparql/filter_limit5", &q);
}

fn bench_deep_join(c: &mut Criterion) {
    let store = generate_dblp(&DblpConfig::small(11)).0;
    // Four-pattern join: streaming pipelines bindings through all joins
    // without materialising the intermediate tables.
    let q = parse(
        "SELECT ?p ?a ?u WHERE {
           ?p a dblp:Publication .
           ?p dblp:authoredBy ?a .
           ?a dblp:affiliatedWith ?u .
           ?p dblp:publishedIn ?v } LIMIT 50",
    );
    both(c, &store, "sparql/deep_join_limit50", &q);

    let q = parse(
        "SELECT ?p ?a ?u WHERE {
           ?p a dblp:Publication .
           ?p dblp:authoredBy ?a .
           ?a dblp:affiliatedWith ?u .
           ?p dblp:publishedIn ?v }",
    );
    both(c, &store, "sparql/deep_join_full", &q);
}

criterion_group!(benches, bench_limit_short_circuit, bench_deep_join);
criterion_main!(benches);
