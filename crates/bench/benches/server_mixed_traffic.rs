//! Mixed OLTP-style traffic driver for the serving layer: read latency
//! (p50/p99) with 0 vs 1 concurrent bulk writer churning store versions.
//!
//! Four reader threads issue a fixed mix of SPARQL-ML SELECTs (through the
//! trained node classifier) and plain SELECTs (through the shared plan
//! cache) against pinned MVCC snapshots. The "churn" run starts one writer
//! thread that loops bulk DELETE+INSERT write transactions — rewriting a
//! slice of the graph and committing a new version each iteration — for
//! the whole measurement window. Because readers execute against pinned
//! snapshots with zero locks held, the writer should cost them almost
//! nothing: the p99 gap between the two runs is the MVCC overhead
//! (snapshot pinning + copy-on-write churn), not lock contention.
//!
//! Latency percentiles come straight from the server's own
//! `kgnet_query_latency_nanos` / `kgnet_commit_latency_nanos` histograms
//! (the `kgnet-obs` instrumentation every query and commit records into),
//! so the bench measures exactly what a Prometheus scrape would report —
//! no side-channel timing vectors.
//!
//! Each run also profiles *where* the remaining synchronization cost
//! lives: lock-site counters (`kgnet_sync::sites`) are snapshotted around
//! the measured window and the three sites with the most wait time land
//! in the JSON next to the latency numbers, together with the global
//! rayon pool's utilization over the window.
//!
//! A third run leaves the process entirely: the same reader mix issued
//! as `POST /sparql` over loopback HTTP against the `kgnet-http`
//! frontend, keep-alive connections, latency clocked client-side around
//! each request. Comparing its percentiles against the server's own
//! `kgnet_query_latency_nanos` histogram for the same window prices the
//! wire: parsing, routing, serialization and the socket round trip.
//!
//! Emits `BENCH_mixed_traffic.json` (run comparison),
//! `BENCH_query_latency.json` (full latency distributions) and
//! `BENCH_http_latency.json` (over-the-wire run) at the workspace root
//! for CI tracking.
//!
//! Run with `cargo bench --bench server_mixed_traffic`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use kgnet_core::{GmlMethodKind, GmlTask, GnnConfig, ManagerConfig, NcTask};
use kgnet_datagen::{generate_dblp, DblpConfig};
use kgnet_gmlaas::TrainRequest;
use kgnet_obs::HistogramSnapshot;
use kgnet_rdf::term::RDF_TYPE;
use kgnet_rdf::Term;
use kgnet_server::{JobState, KgServer, ServerConfig};

const READERS: usize = 4;
const ROUNDS: usize = 30;

const PV_QUERY: &str = r#"
    PREFIX dblp: <https://www.dblp.org/>
    PREFIX kgnet: <https://www.kgnet.com/>
    SELECT ?title ?venue WHERE {
      ?paper a dblp:Publication .
      ?paper dblp:title ?title .
      ?paper ?NodeClassifier ?venue .
      ?NodeClassifier a kgnet:NodeClassifier .
      ?NodeClassifier kgnet:TargetNode dblp:Publication .
      ?NodeClassifier kgnet:NodeLabel dblp:publishedIn . }"#;

const JOIN_QUERY: &str = "PREFIX dblp: <https://www.dblp.org/> \
    SELECT ?p ?a WHERE { ?p a dblp:Publication . ?p dblp:authoredBy ?a } LIMIT 50";

fn nc_request() -> TrainRequest {
    let mut req = TrainRequest::new(
        "paper-venue",
        GmlTask::NodeClassification(NcTask {
            target_type: "https://www.dblp.org/Publication".into(),
            label_predicate: "https://www.dblp.org/publishedIn".into(),
        }),
    );
    req.cfg = GnnConfig::fast_test();
    req.forced_method = Some(GmlMethodKind::GraphSaint);
    req
}

/// One bulk-churn iteration: DELETE every `Person` typing triple, re-INSERT
/// the same population under fresh IRIs, publish as one commit. Touches a
/// type the reader queries never select on, so reader *results* stay
/// stable while whole store versions flip under them.
fn churn_once(server: &KgServer, round: u64) {
    let mut txn = server.write_session();
    txn.with_store(|st| {
        let person = Term::iri("https://www.dblp.org/Person");
        let (Some(t), Some(c)) = (st.lookup(&Term::iri(RDF_TYPE)), st.lookup(&person)) else {
            return;
        };
        let doomed: Vec<(Term, Term, Term)> = st
            .matches(None, Some(t), Some(c))
            .into_iter()
            .map(|(s, p, o)| (st.resolve(s).clone(), st.resolve(p).clone(), st.resolve(o).clone()))
            .collect();
        let population = doomed.len();
        for (s, p, o) in &doomed {
            st.remove(s, p, o);
        }
        for i in 0..population {
            st.insert(
                Term::iri(format!("http://churn/{round}/{i}")),
                Term::iri(RDF_TYPE),
                person.clone(),
            );
        }
    });
    txn.commit();
}

/// One lock site's counter movement over a measured window.
struct LockSiteDelta {
    name: &'static str,
    acquires: u64,
    contended: u64,
    wait_nanos: u64,
}

/// One measured run's latency distributions, as recorded by the server's
/// own histograms, plus where the synchronization cost went.
struct RunStats {
    query: HistogramSnapshot,
    commit: HistogramSnapshot,
    commits: u64,
    /// Top-3 lock sites by wait time accumulated during the window.
    top_sites: Vec<LockSiteDelta>,
    /// Global rayon pool utilization (busy / wall x threads) over the window.
    pool_utilization: f64,
}

/// Lock-site counter deltas between two [`kgnet_sync::sites::all`]
/// snapshots, sorted by wait time (then acquisitions), truncated to the
/// top three. The site statics are process-global, so per-run numbers
/// must be deltas, never absolutes.
fn top_site_deltas(before: &HashMap<&'static str, (u64, u64, u64)>) -> Vec<LockSiteDelta> {
    let mut deltas: Vec<LockSiteDelta> = kgnet_sync::sites::all()
        .into_iter()
        .map(|s| {
            let (acquires, contended, wait_nanos) =
                before.get(s.name).copied().unwrap_or((0, 0, 0));
            LockSiteDelta {
                name: s.name,
                acquires: s.acquires - acquires,
                contended: s.contended - contended,
                wait_nanos: s.wait_nanos - wait_nanos,
            }
        })
        .filter(|d| d.acquires > 0)
        .collect();
    deltas
        .sort_by(|a, b| b.wait_nanos.cmp(&a.wait_nanos).then_with(|| b.acquires.cmp(&a.acquires)));
    deltas.truncate(3);
    deltas
}

/// Drive the mixed workload with `writers` bulk-writer threads churning
/// store versions for the whole window, then snapshot the server's
/// latency histograms.
fn measure(writers: usize) -> RunStats {
    let (kg, _) = generate_dblp(&DblpConfig::small(11));
    let config = ServerConfig {
        manager: ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() },
        ..Default::default()
    };
    let server = Arc::new(KgServer::new(kg, config));

    // The model the ML SELECT resolves must exist before readers start.
    let nc = server.submit_train(nc_request()).unwrap();
    assert!(matches!(server.wait(nc).unwrap().state, JobState::Done { .. }), "NC training failed");

    // Contention/pool profile of the measured window only: training above
    // already moved the process-global counters, so delta against here.
    let sites_before: HashMap<&'static str, (u64, u64, u64)> = kgnet_sync::sites::all()
        .into_iter()
        .map(|s| (s.name, (s.acquires, s.contended, s.wait_nanos)))
        .collect();
    let pool_before = rayon::global_pool_stats();

    let stop = Arc::new(AtomicBool::new(false));
    let commits = Arc::new(AtomicU64::new(0));
    let writer_threads: Vec<_> = (0..writers)
        .map(|w| {
            let server = server.clone();
            let stop = stop.clone();
            let commits = commits.clone();
            std::thread::spawn(move || {
                let mut round = w as u64 * 1_000_000;
                while !stop.load(Ordering::SeqCst) {
                    churn_once(&server, round);
                    commits.fetch_add(1, Ordering::SeqCst);
                    round += 1;
                }
            })
        })
        .collect();

    let barrier = Arc::new(Barrier::new(READERS));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let server = server.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut session = server.read_session();
                barrier.wait();
                for round in 0..ROUNDS {
                    for query in [PV_QUERY, JOIN_QUERY] {
                        let rows = session.sparql(query).expect("query");
                        assert!(!rows.is_empty());
                    }
                    // Re-pin periodically, like a long-lived client that
                    // wants fresh data: pinning is part of read cost.
                    if round % 10 == 9 {
                        session.refresh();
                    }
                }
            })
        })
        .collect();
    for reader in readers {
        reader.join().unwrap();
    }
    stop.store(true, Ordering::SeqCst);
    for writer in writer_threads {
        writer.join().unwrap();
    }

    let top_sites = top_site_deltas(&sites_before);
    let pool_after = rayon::global_pool_stats();
    let busy = pool_after.busy_nanos.saturating_sub(pool_before.busy_nanos);
    let wall = pool_after.wall_nanos.saturating_sub(pool_before.wall_nanos);
    let capacity = wall.saturating_mul(pool_after.n_threads as u64);
    let pool_utilization = if capacity > 0 { busy as f64 / capacity as f64 } else { 0.0 };

    let metrics = server.metrics();
    let query = metrics.query_latency.snapshot();
    assert_eq!(
        query.count,
        (READERS * ROUNDS * 2) as u64,
        "query-latency histogram must see every reader query exactly once"
    );
    RunStats {
        query,
        commit: metrics.commit_latency.snapshot(),
        commits: commits.load(Ordering::SeqCst),
        top_sites,
        pool_utilization,
    }
}

/// One over-the-wire run: client-observed request latencies plus the
/// server-side views of the same window.
struct HttpRunStats {
    /// Client-clocked wall nanos per request, sorted ascending.
    latencies: Vec<u64>,
    /// Response count by HTTP status.
    statuses: HashMap<u16, u64>,
    /// The server's in-process query-execution histogram for the window —
    /// the wire run's denominator.
    query: HistogramSnapshot,
    /// The frontend's own request histogram (routing + handling, no
    /// socket time).
    http: HistogramSnapshot,
}

/// `q`-quantile of a sorted latency vector (nearest-rank).
fn client_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Drive the reader mix through the HTTP frontend on a loopback port:
/// same queries, same thread count, latency measured around each
/// round trip the way an external client would see it.
fn measure_http() -> HttpRunStats {
    let (kg, _) = generate_dblp(&DblpConfig::small(11));
    let config = ServerConfig {
        manager: ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() },
        ..Default::default()
    };
    let server = Arc::new(KgServer::new(kg, config));
    let nc = server.submit_train(nc_request()).unwrap();
    assert!(matches!(server.wait(nc).unwrap().state, JobState::Done { .. }), "NC training failed");

    let http =
        kgnet_http::HttpServer::start(Arc::clone(&server), kgnet_http::HttpConfig::default())
            .expect("bind loopback frontend");
    let addr = http.addr();

    let barrier = Arc::new(Barrier::new(READERS));
    let clients: Vec<_> = (0..READERS)
        .map(|_| {
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut conn = kgnet_http::Client::connect(addr).expect("client connect");
                let mut latencies = Vec::with_capacity(ROUNDS * 2);
                let mut statuses: HashMap<u16, u64> = HashMap::new();
                barrier.wait();
                for _ in 0..ROUNDS {
                    for query in [PV_QUERY, JOIN_QUERY] {
                        let t0 = std::time::Instant::now();
                        let r = conn.post("/sparql", query.as_bytes()).expect("wire query");
                        latencies.push(t0.elapsed().as_nanos() as u64);
                        *statuses.entry(r.status).or_insert(0) += 1;
                        assert_eq!(r.status, 200, "{}", r.text());
                    }
                }
                (latencies, statuses)
            })
        })
        .collect();

    let mut latencies = Vec::with_capacity(READERS * ROUNDS * 2);
    let mut statuses: HashMap<u16, u64> = HashMap::new();
    for client in clients {
        let (lat, st) = client.join().unwrap();
        latencies.extend(lat);
        for (status, n) in st {
            *statuses.entry(status).or_insert(0) += n;
        }
    }
    latencies.sort_unstable();

    let metrics = server.metrics_handle();
    let stats = HttpRunStats {
        latencies,
        statuses,
        query: metrics.query_latency.snapshot(),
        http: metrics.http_request_latency.snapshot(),
    };
    http.shutdown();
    stats
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

fn main() {
    println!("server_mixed_traffic: {READERS} readers x {ROUNDS} rounds x 2 queries");
    println!("  (percentiles read from the server's kgnet_query_latency_nanos histogram)");
    let mut mixed_lines = Vec::new();
    let mut latency_lines = Vec::new();
    let mut p99s = Vec::new();
    for writers in [0usize, 1] {
        let run = measure(writers);
        let (p50_ms, p99_ms) = (ms(run.query.quantile(0.50)), ms(run.query.quantile(0.99)));
        let n = run.query.count;
        let commits = run.commits;
        println!(
            "  {writers} bulk writers: p50 {p50_ms:>8.3} ms   p99 {p99_ms:>8.3} ms   \
             ({n} queries, {commits} commits, commit p99 {:.3} ms)",
            ms(run.commit.quantile(0.99))
        );
        println!("      pool utilization {:.1}%", run.pool_utilization * 100.0);
        for site in &run.top_sites {
            println!(
                "      lock {:<28} {:>7} acquires  {:>5} contended  {:>9.3} ms waited",
                site.name,
                site.acquires,
                site.contended,
                ms(site.wait_nanos)
            );
        }
        let sites_json = run
            .top_sites
            .iter()
            .map(|s| {
                format!(
                    "{{\"site\": \"{}\", \"acquires\": {}, \"contended\": {}, \
                     \"wait_ms\": {:.4}}}",
                    s.name,
                    s.acquires,
                    s.contended,
                    ms(s.wait_nanos)
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        mixed_lines.push(format!(
            "    {{\"writers\": {writers}, \"p50_ms\": {p50_ms:.4}, \"p99_ms\": {p99_ms:.4}, \
             \"queries\": {n}, \"commits\": {commits}, \
             \"pool_utilization\": {:.4}, \"top_lock_sites\": [{sites_json}]}}",
            run.pool_utilization
        ));
        latency_lines.push(format!(
            "    {{\"writers\": {writers}, \"count\": {}, \"mean_ms\": {:.4}, \
             \"p50_ms\": {:.4}, \"p90_ms\": {:.4}, \"p99_ms\": {:.4}, \"max_ms\": {:.4}, \
             \"commit_count\": {}, \"commit_p50_ms\": {:.4}, \"commit_p99_ms\": {:.4}}}",
            run.query.count,
            run.query.mean() / 1e6,
            ms(run.query.quantile(0.50)),
            ms(run.query.quantile(0.90)),
            ms(run.query.quantile(0.99)),
            ms(run.query.max),
            run.commit.count,
            ms(run.commit.quantile(0.50)),
            ms(run.commit.quantile(0.99)),
        ));
        p99s.push(p99_ms);
    }
    let ratio = if p99s[0] > 0.0 { p99s[1] / p99s[0] } else { 0.0 };
    println!("  p99 churn/baseline ratio: {ratio:.2}x (readers never block on writers)");

    // Over-the-wire run: the same mix through the HTTP frontend, latency
    // clocked around the round trip by the clients themselves.
    let wire = measure_http();
    let (wire_p50, wire_p99) =
        (client_quantile(&wire.latencies, 0.50), client_quantile(&wire.latencies, 0.99));
    // Overhead is a ratio of *means*: the 50/50 fast-join/slow-ML mix is
    // bimodal, so medians sit on the mode boundary and flap — means
    // price the wire stably.
    let wire_mean = wire.latencies.iter().sum::<u64>() as f64 / wire.latencies.len().max(1) as f64;
    let exec_mean = wire.query.mean();
    let wire_overhead = if exec_mean > 0.0 { wire_mean / exec_mean } else { 0.0 };
    let mut status_pairs: Vec<_> = wire.statuses.iter().collect();
    status_pairs.sort();
    let statuses_json = status_pairs
        .iter()
        .map(|(status, n)| format!("\"{status}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "  over the wire ({} requests): p50 {:>8.3} ms   p99 {:>8.3} ms   \
         ({:.2}x the in-process execution mean; frontend handling mean {:.3} ms)",
        wire.latencies.len(),
        ms(wire_p50),
        ms(wire_p99),
        wire_overhead,
        wire.http.mean() / 1e6,
    );

    let http_json = format!(
        "{{\n  \"bench\": \"http_latency\",\n  \"clients\": {READERS},\n  \
         \"rounds\": {ROUNDS},\n  \"source\": \"client-side wall clock over loopback\",\n  \
         \"requests\": {},\n  \"statuses\": {{{statuses_json}}},\n  \
         \"p50_ms\": {:.4},\n  \"p90_ms\": {:.4},\n  \"p99_ms\": {:.4},\n  \
         \"max_ms\": {:.4},\n  \"mean_ms\": {:.4},\n  \"exec_mean_ms\": {:.4},\n  \
         \"frontend_mean_ms\": {:.4},\n  \"wire_overhead_ratio\": {wire_overhead:.4}\n}}\n",
        wire.latencies.len(),
        ms(wire_p50),
        ms(client_quantile(&wire.latencies, 0.90)),
        ms(wire_p99),
        ms(wire.latencies.last().copied().unwrap_or(0)),
        wire_mean / 1e6,
        exec_mean / 1e6,
        wire.http.mean() / 1e6,
    );

    let mixed = format!(
        "{{\n  \"bench\": \"server_mixed_traffic\",\n  \"readers\": {READERS},\n  \
         \"rounds\": {ROUNDS},\n  \"source\": \"kgnet_query_latency_nanos\",\n  \
         \"p99_ratio\": {ratio:.4},\n  \"runs\": [\n{}\n  ]\n}}\n",
        mixed_lines.join(",\n")
    );
    let latency = format!(
        "{{\n  \"bench\": \"query_latency\",\n  \"readers\": {READERS},\n  \
         \"rounds\": {ROUNDS},\n  \"source\": \"kgnet_query_latency_nanos\",\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        latency_lines.join(",\n")
    );
    for (path, json) in [
        (concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mixed_traffic.json"), &mixed),
        (concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query_latency.json"), &latency),
        (concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_http_latency.json"), &http_json),
    ] {
        match std::fs::write(path, json) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => eprintln!("  could not write {path}: {e}"),
        }
    }
}
