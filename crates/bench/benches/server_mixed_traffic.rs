//! Mixed OLTP-style traffic driver for the serving layer: query latency
//! (p50/p99) under 0 vs 2 concurrent training jobs.
//!
//! Four reader threads issue a fixed mix of SPARQL-ML SELECTs (through the
//! trained node classifier) and plain SELECTs (through the session plan
//! cache) against one `SharedStore`. The "loaded" run submits two
//! link-prediction training jobs to the admission-controlled queue right
//! before the readers start, so training churns on its dedicated pools
//! while the latencies are sampled. On a multi-core host the p99 gap
//! between the two runs is the cost of sharing the machine with training;
//! the single-core CI container shows the scheduling overhead instead.
//!
//! Run with `cargo bench --bench server_mixed_traffic`.

use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use kgnet_core::{GmlMethodKind, GmlTask, GnnConfig, LpTask, ManagerConfig, NcTask};
use kgnet_datagen::{generate_dblp, DblpConfig};
use kgnet_gmlaas::TrainRequest;
use kgnet_server::{JobState, KgServer, ServerConfig};

const READERS: usize = 4;
const ROUNDS: usize = 30;

const PV_QUERY: &str = r#"
    PREFIX dblp: <https://www.dblp.org/>
    PREFIX kgnet: <https://www.kgnet.com/>
    SELECT ?title ?venue WHERE {
      ?paper a dblp:Publication .
      ?paper dblp:title ?title .
      ?paper ?NodeClassifier ?venue .
      ?NodeClassifier a kgnet:NodeClassifier .
      ?NodeClassifier kgnet:TargetNode dblp:Publication .
      ?NodeClassifier kgnet:NodeLabel dblp:publishedIn . }"#;

const JOIN_QUERY: &str = "PREFIX dblp: <https://www.dblp.org/> \
    SELECT ?p ?a WHERE { ?p a dblp:Publication . ?p dblp:authoredBy ?a } LIMIT 50";

fn nc_request() -> TrainRequest {
    let mut req = TrainRequest::new(
        "paper-venue",
        GmlTask::NodeClassification(NcTask {
            target_type: "https://www.dblp.org/Publication".into(),
            label_predicate: "https://www.dblp.org/publishedIn".into(),
        }),
    );
    req.cfg = GnnConfig::fast_test();
    req.forced_method = Some(GmlMethodKind::GraphSaint);
    req
}

fn lp_request(name: &str, epochs: usize) -> TrainRequest {
    let mut req = TrainRequest::new(
        name,
        GmlTask::LinkPrediction(LpTask {
            source_type: "https://www.dblp.org/Person".into(),
            edge_predicate: "https://www.dblp.org/affiliatedWith".into(),
            dest_type: "https://www.dblp.org/Affiliation".into(),
        }),
    );
    req.cfg = GnnConfig { epochs, ..GnnConfig::fast_test() };
    req.forced_method = Some(GmlMethodKind::Morse);
    req.sampler = "d2h1".into();
    req
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// One measured run: returns (p50, p99, total queries) of per-query latency
/// across all readers, with `background_jobs` LP trainings churning.
fn measure(background_jobs: usize) -> (Duration, Duration, usize) {
    let (kg, _) = generate_dblp(&DblpConfig::small(11));
    let config = ServerConfig {
        manager: ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() },
        ..Default::default()
    };
    let server = Arc::new(KgServer::new(kg, config));

    // The model the ML SELECT resolves must exist before readers start.
    let nc = server.submit_train(nc_request()).unwrap();
    assert!(matches!(server.wait(nc).unwrap().state, JobState::Done { .. }), "NC training failed");

    let jobs: Vec<_> = (0..background_jobs)
        .map(|i| server.submit_train(lp_request(&format!("churn-{i}"), 60)).unwrap())
        .collect();

    let barrier = Arc::new(Barrier::new(READERS));
    let latencies = Arc::new(Mutex::new(Vec::new()));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let server = server.clone();
            let barrier = barrier.clone();
            let latencies = latencies.clone();
            std::thread::spawn(move || {
                let mut session = server.read_session();
                let mut local = Vec::with_capacity(ROUNDS * 2);
                barrier.wait();
                for _ in 0..ROUNDS {
                    for query in [PV_QUERY, JOIN_QUERY] {
                        let start = Instant::now();
                        let rows = session.sparql(query).expect("query");
                        local.push(start.elapsed());
                        assert!(!rows.is_empty());
                    }
                }
                latencies.lock().unwrap().extend(local);
            })
        })
        .collect();
    for reader in readers {
        reader.join().unwrap();
    }
    for job in jobs {
        // Let stragglers finish so the next run starts clean.
        let _ = server.wait(job);
    }

    let mut all = Arc::try_unwrap(latencies).unwrap().into_inner().unwrap();
    all.sort();
    let (p50, p99) = (percentile(&all, 0.50), percentile(&all, 0.99));
    (p50, p99, READERS * ROUNDS * 2)
}

fn main() {
    println!("server_mixed_traffic: {READERS} readers x {ROUNDS} rounds x 2 queries");
    for background_jobs in [0usize, 2] {
        let (p50, p99, n) = measure(background_jobs);
        println!(
            "  {background_jobs} training jobs: p50 {:>8.3} ms   p99 {:>8.3} ms   ({n} queries)",
            p50.as_secs_f64() * 1e3,
            p99.as_secs_f64() * 1e3,
        );
    }
}
