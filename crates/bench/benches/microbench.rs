//! Criterion micro-benchmarks over the platform's hot paths: RDF bulk load,
//! SPARQL BGP matching, the data transformer, meta-sampling, one autodiff
//! GCN step, a KGE epoch, embedding search and an end-to-end SPARQL-ML
//! SELECT.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use kgnet_datagen::{generate_dblp, DblpConfig};
use kgnet_gml::config::{GmlMethodKind, GnnConfig};
use kgnet_gml::dataset::{build_lp_dataset, build_nc_dataset};
use kgnet_gml::lp::train_lp;
use kgnet_gmlaas::{EmbeddingStore, Metric};
use kgnet_graph::{transform, GmlTask, LpTask, NcTask, SplitRatios, SplitStrategy};
use kgnet_linalg::{init, CsrMatrix, Tape};
use kgnet_rdf::{query, RdfStore};
use kgnet_sampler::{meta_sample_task, SamplingScope};

fn kg() -> RdfStore {
    generate_dblp(&DblpConfig::small(5)).0
}

fn nc_task() -> NcTask {
    NcTask {
        target_type: "https://www.dblp.org/Publication".into(),
        label_predicate: "https://www.dblp.org/publishedIn".into(),
    }
}

fn bench_rdf(c: &mut Criterion) {
    let store = kg();
    let triples: Vec<_> = store
        .iter()
        .map(|(s, p, o)| {
            (store.resolve(s).clone(), store.resolve(p).clone(), store.resolve(o).clone())
        })
        .collect();

    c.bench_function("rdf/bulk_load_13k_triples", |b| {
        b.iter_batched(
            || triples.clone(),
            |ts| {
                let mut st = RdfStore::new();
                for (s, p, o) in ts {
                    st.insert(s, p, o);
                }
                st.len()
            },
            BatchSize::LargeInput,
        )
    });

    c.bench_function("rdf/bgp_two_pattern_join", |b| {
        b.iter(|| {
            query(
                &store,
                "PREFIX dblp: <https://www.dblp.org/>
                 SELECT ?p ?a WHERE { ?p a dblp:Publication . ?p dblp:authoredBy ?a }",
            )
            .unwrap()
            .len()
        })
    });

    c.bench_function("rdf/count_aggregate", |b| {
        b.iter(|| query(&store, "SELECT (COUNT(DISTINCT ?t) AS ?n) WHERE { ?s a ?t }").unwrap())
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let store = kg();
    c.bench_function("pipeline/transform_to_heterograph", |b| {
        b.iter(|| transform(&store, &["https://www.dblp.org/publishedIn".to_owned()]).0.n_edges())
    });

    c.bench_function("pipeline/meta_sample_d1h1", |b| {
        b.iter(|| {
            meta_sample_task(&store, &GmlTask::NodeClassification(nc_task()), SamplingScope::D1H1)
                .store
                .len()
        })
    });

    c.bench_function("pipeline/build_nc_dataset", |b| {
        b.iter(|| {
            build_nc_dataset(&store, &nc_task(), SplitStrategy::Random, SplitRatios::default(), 1)
                .n_targets()
        })
    });
}

fn bench_training(c: &mut Criterion) {
    let store = kg();
    let data =
        build_nc_dataset(&store, &nc_task(), SplitStrategy::Random, SplitRatios::default(), 1);
    let adj = Rc::new(data.graph.gcn_adjacency());
    let n = data.graph.n_nodes();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let x0 = init::xavier_uniform(n, 32, &mut rng);
    let w0 = init::xavier_uniform(32, 32, &mut rng);
    let labels: Rc<Vec<u32>> = Rc::new(data.labels.clone());
    let targets: Rc<Vec<u32>> = Rc::new(data.target_nodes.clone());

    c.bench_function("training/gcn_autodiff_step", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let a = t.adjacency(adj.clone());
            let x = t.param(x0.clone());
            let w = t.param(w0.clone());
            let xw = t.matmul(x, w);
            let h = t.spmm(a, xw);
            let h = t.relu(h);
            let ht = t.gather(h, targets.clone());
            // 32 hidden -> reuse as logits over up to 32 classes.
            let loss = t.softmax_ce(ht, labels.clone());
            t.backward(loss);
            t.scalar(loss)
        })
    });

    c.bench_function("training/kge_transe_run", |b| {
        let lp_task = LpTask {
            source_type: "https://www.dblp.org/Person".into(),
            edge_predicate: "https://www.dblp.org/affiliatedWith".into(),
            dest_type: "https://www.dblp.org/Affiliation".into(),
        };
        let lp = build_lp_dataset(&store, &lp_task, SplitRatios::default(), 1);
        let cfg = GnnConfig { epochs: 2, batch_size: 128, hidden: 16, ..GnnConfig::default() };
        b.iter(|| train_lp(GmlMethodKind::TransE, &lp, &cfg).report.loss_curve.len())
    });
}

fn bench_spmm(c: &mut Criterion) {
    let store = kg();
    let (graph, _) = transform(&store, &[]);
    let adj = graph.gcn_adjacency();
    let x = init::xavier_uniform(
        graph.n_nodes(),
        64,
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1),
    );
    c.bench_function("linalg/spmm_13k_graph_d64", |b| b.iter(|| adj.spmm(&x).rows()));
    c.bench_function("linalg/csr_transpose", |b| b.iter(|| adj.transpose().nnz()));
    let _ = CsrMatrix::from_coo(2, 2, vec![(0, 1, 1.0)]);
}

fn bench_embedding(c: &mut Criterion) {
    let mut store = EmbeddingStore::new(32, Metric::Cosine);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    for i in 0..2000 {
        let v = init::xavier_uniform(1, 32, &mut rng).as_slice().to_vec();
        store.add(format!("e{i}"), v).expect("widths match");
    }
    let q = store.get("e42").unwrap().to_vec();
    c.bench_function("embedding/exact_top10_of_2000", |b| {
        b.iter(|| store.search_exact(&q, 10).len())
    });
    store.build_ivf(32, 4, 9);
    c.bench_function("embedding/ivf_top10_nprobe4", |b| b.iter(|| store.search(&q, 10, 4).len()));
}

fn bench_sparqlml(c: &mut Criterion) {
    use kgnet_core::{GnnConfig as GC, KgNet, ManagerConfig, MlOutcome};
    let (kgd, _) = generate_dblp(&DblpConfig::tiny(11));
    let cfg = ManagerConfig { default_cfg: GC::fast_test(), ..Default::default() };
    let mut platform = KgNet::with_graph_and_config(kgd, cfg);
    platform
        .execute(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                 {Name: 'bench', GML-Task:{ TaskType: kgnet:NodeClassifier,
                    TargetNode: dblp:Publication, NodeLabel: dblp:publishedIn},
                  Method: 'GCN'})}"#,
        )
        .unwrap();
    c.bench_function("sparqlml/select_with_ud_predicate", |b| {
        b.iter(|| {
            let MlOutcome::Rows(rows) = platform
                .execute(
                    r#"PREFIX dblp: <https://www.dblp.org/>
                       PREFIX kgnet: <https://www.kgnet.com/>
                       SELECT ?paper ?venue WHERE {
                         ?paper a dblp:Publication .
                         ?paper ?NC ?venue .
                         ?NC a kgnet:NodeClassifier .
                         ?NC kgnet:TargetNode dblp:Publication .
                         ?NC kgnet:NodeLabel dblp:publishedIn . }"#,
                )
                .unwrap()
            else {
                panic!("rows")
            };
            rows.len()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rdf, bench_pipeline, bench_training, bench_spmm, bench_embedding, bench_sparqlml
);
criterion_main!(benches);
