//! Thread-count sweep over the parallel linalg kernels: 512x512 dense
//! matmul and a banded CSR spmm, each on dedicated pools of 1, 2 and 4
//! workers plus the sequential (cutoff-forced) reference. On multi-core
//! hardware the 4-thread rows should come in at >= 2x the 1-thread rows;
//! on a single hardware core all pool sizes degenerate to roughly the
//! sequential cost (scheduling overhead stays within a few percent thanks
//! to the one-thread fast path in `join`).

use criterion::{criterion_group, criterion_main, Criterion};

use kgnet_linalg::{CsrMatrix, Matrix};
use rayon::ThreadPoolBuilder;

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

fn dense_pair(n: usize) -> (Matrix, Matrix) {
    let a = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.125 - 0.75);
    let b = Matrix::from_fn(n, n, |r, c| ((r * 5 + c * 17) % 11) as f32 * 0.25 - 1.25);
    (a, b)
}

fn banded_csr(n: usize, band: usize) -> CsrMatrix {
    let entries: Vec<(u32, u32, f32)> = (0..n as u32)
        .flat_map(|r| {
            (0..band as u32).map(move |k| (r, (r + k * 37) % n as u32, (k + 1) as f32 * 0.1))
        })
        .collect();
    CsrMatrix::from_coo(n, n, entries)
}

fn bench_matmul(c: &mut Criterion) {
    let (a, b) = dense_pair(512);
    c.bench_function("par_linalg/matmul_512/seq", |bench| bench.iter(|| a.matmul(&b).sum()));
    for threads in THREAD_SWEEP {
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        c.bench_function(&format!("par_linalg/matmul_512/t{threads}"), |bench| {
            bench.iter(|| pool.install(|| a.matmul(&b).sum()))
        });
    }
}

fn bench_spmm(c: &mut Criterion) {
    let m = banded_csr(8192, 12);
    let x = Matrix::from_fn(8192, 64, |r, cc| ((r * 3 + cc * 5) % 9) as f32 * 0.2 - 0.8);
    c.bench_function("par_linalg/spmm_8192x12_d64/seq", |bench| bench.iter(|| m.spmm(&x).sum()));
    for threads in THREAD_SWEEP {
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        c.bench_function(&format!("par_linalg/spmm_8192x12_d64/t{threads}"), |bench| {
            bench.iter(|| pool.install(|| m.spmm(&x).sum()))
        });
    }
}

fn bench_matmul_tn_nt(c: &mut Criterion) {
    let (a, b) = dense_pair(384);
    for threads in THREAD_SWEEP {
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        c.bench_function(&format!("par_linalg/matmul_tn_384/t{threads}"), |bench| {
            bench.iter(|| pool.install(|| a.matmul_tn(&b).sum()))
        });
        c.bench_function(&format!("par_linalg/matmul_nt_384/t{threads}"), |bench| {
            bench.iter(|| pool.install(|| a.matmul_nt(&b).sum()))
        });
    }
}

criterion_group!(par_linalg, bench_matmul, bench_spmm, bench_matmul_tn_nt);
criterion_main!(par_linalg);
