//! Vector-search shootout: build time, per-query p50/p99 latency and
//! recall@10 for exact scan vs IVF vs HNSW vs PQ on one random embedding
//! workload (100k × 32 by default; override the scale with
//! `KGNET_ANN_BENCH_N=…` for quick local runs).
//!
//! Recall is measured against `search_exact` on the same store, so the
//! acceptance bar of the vector-search subsystem — recall@10 ≥ 0.9 for
//! HNSW and PQ at 100k vectors — is read straight off the output.
//!
//! Run with `cargo bench --bench ann_search`.

use std::time::{Duration, Instant};

use kgnet_ann::{HnswConfig, PqConfig};
use kgnet_gmlaas::{EmbeddingStore, Metric};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 32;
const QUERIES: usize = 200;
const K: usize = 10;

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct Run {
    name: &'static str,
    build: Duration,
    p50: Duration,
    p99: Duration,
    recall: f64,
}

fn measure(
    name: &'static str,
    store: &EmbeddingStore,
    build: Duration,
    queries: &[Vec<f32>],
    exact: &[Vec<String>],
) -> Run {
    let mut lat = Vec::with_capacity(queries.len());
    let mut hits = 0usize;
    let mut total = 0usize;
    for (q, truth) in queries.iter().zip(exact) {
        let start = Instant::now();
        let got = store.search(q, K, 8);
        lat.push(start.elapsed());
        total += truth.len();
        hits += truth.iter().filter(|k| got.iter().any(|(g, _)| g == *k)).count();
    }
    lat.sort();
    Run {
        name,
        build,
        p50: percentile(&lat, 0.50),
        p99: percentile(&lat, 0.99),
        recall: hits as f64 / total.max(1) as f64,
    }
}

fn main() {
    let n: usize =
        std::env::var("KGNET_ANN_BENCH_N").ok().and_then(|v| v.parse().ok()).unwrap_or(100_000);
    println!("ann_search: {n} vectors x {DIM}d, {QUERIES} queries, top-{K}");

    let mut rng = StdRng::seed_from_u64(42);
    let mut store = EmbeddingStore::new(DIM, Metric::L2);
    for i in 0..n {
        let v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
        store.add(format!("e{i}"), v).expect("widths match");
    }
    let queries: Vec<Vec<f32>> =
        (0..QUERIES).map(|_| (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();

    // Ground truth (and the exact scan's own latency profile).
    let mut exact_lat = Vec::with_capacity(QUERIES);
    let exact: Vec<Vec<String>> = queries
        .iter()
        .map(|q| {
            let start = Instant::now();
            let hits = store.search_exact(q, K);
            exact_lat.push(start.elapsed());
            hits.into_iter().map(|(k, _)| k).collect()
        })
        .collect();
    exact_lat.sort();

    let mut runs = vec![Run {
        name: "exact",
        build: Duration::ZERO,
        p50: percentile(&exact_lat, 0.50),
        p99: percentile(&exact_lat, 0.99),
        recall: 1.0,
    }];

    let start = Instant::now();
    store.build_ivf((n / 64).clamp(16, 4096), 4, 7);
    let build = start.elapsed();
    runs.push(measure("ivf(nprobe=8)", &store, build, &queries, &exact));

    let start = Instant::now();
    store.build_hnsw(&HnswConfig::default());
    let build = start.elapsed();
    runs.push(measure("hnsw(m=16,ef=128)", &store, build, &queries, &exact));

    let start = Instant::now();
    store.build_pq(&PqConfig::default());
    let build = start.elapsed();
    runs.push(measure("pq(m=8,refine=8)", &store, build, &queries, &exact));

    println!("  {:<18} {:>12} {:>12} {:>12} {:>10}", "index", "build", "p50", "p99", "recall@10");
    for r in runs {
        println!(
            "  {:<18} {:>9.2} ms {:>9.3} ms {:>9.3} ms {:>10.3}",
            r.name,
            r.build.as_secs_f64() * 1e3,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.recall,
        );
    }
}
