//! CI metrics-drift gate: spin up a tiny server, push a smoke workload
//! through every instrumented layer (query, plan cache, commit, training
//! queue), and fail when the Prometheus exposition is malformed or any
//! metric of the published catalog ([`kgnet_server::METRIC_CATALOG`]) has
//! gone missing — the drift this guards against is a refactor silently
//! dropping or renaming an instrument the dashboards scrape.
//!
//! Run with `cargo run --release -p kgnet-bench --bin metrics_drift`;
//! exits nonzero on any violation.

use std::collections::HashMap;
use std::process::ExitCode;

use kgnet_core::{GmlTask, GnnConfig, ManagerConfig, NcTask};
use kgnet_datagen::{generate_dblp, DblpConfig};
use kgnet_gmlaas::TrainRequest;
use kgnet_server::{JobState, KgServer, ServerConfig, METRIC_CATALOG};

/// Parse and structurally validate a Prometheus text exposition. Returns
/// the declared `# TYPE` kinds by metric name, or every violation found.
fn validate_prometheus(text: &str) -> Result<HashMap<String, String>, Vec<String>> {
    let mut kinds: HashMap<String, String> = HashMap::new();
    let mut errors = Vec::new();
    // Histogram bookkeeping: cumulative bucket counts must be
    // non-decreasing and the +Inf bucket must equal `_count`.
    let mut last_bucket: HashMap<String, u64> = HashMap::new();
    let mut inf_bucket: HashMap<String, u64> = HashMap::new();
    let mut hist_count: HashMap<String, u64> = HashMap::new();

    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next()) {
                (Some(name), Some(kind)) if ["counter", "gauge", "histogram"].contains(&kind) => {
                    if kinds.insert(name.to_owned(), kind.to_owned()).is_some() {
                        errors.push(format!("line {lineno}: duplicate TYPE for {name}"));
                    }
                }
                _ => errors.push(format!("line {lineno}: malformed TYPE line: {line}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: `name value` or `name{labels} value`.
        let Some((series, value)) = line.rsplit_once(' ') else {
            errors.push(format!("line {lineno}: sample without value: {line}"));
            continue;
        };
        if value.parse::<f64>().is_err() {
            errors.push(format!("line {lineno}: non-numeric value {value:?}"));
            continue;
        }
        let name = series.split('{').next().unwrap_or(series);
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| kinds.get(*b).map(String::as_str) == Some("histogram"));
        let declared = base.unwrap_or(name);
        if !kinds.contains_key(declared) {
            errors.push(format!("line {lineno}: sample {name} has no preceding TYPE"));
            continue;
        }
        if let Some(base) = base {
            if name.ends_with("_bucket") {
                let count: u64 = match value.parse() {
                    Ok(c) => c,
                    Err(_) => {
                        errors.push(format!("line {lineno}: non-integer bucket count {value:?}"));
                        continue;
                    }
                };
                let prev = last_bucket.insert(base.to_owned(), count).unwrap_or(0);
                if count < prev {
                    errors.push(format!(
                        "line {lineno}: {base} cumulative buckets decreased ({prev} -> {count})"
                    ));
                }
                if series.contains("le=\"+Inf\"") {
                    inf_bucket.insert(base.to_owned(), count);
                }
            } else if name.ends_with("_count") {
                hist_count.insert(base.to_owned(), value.parse().unwrap_or(u64::MAX));
            }
        }
    }
    for (name, kind) in &kinds {
        if kind == "histogram" {
            match (inf_bucket.get(name), hist_count.get(name)) {
                (Some(inf), Some(count)) if inf != count => errors
                    .push(format!("{name}: +Inf bucket {inf} disagrees with {name}_count {count}")),
                (None, _) => errors.push(format!("{name}: histogram without a +Inf bucket")),
                (_, None) => errors.push(format!("{name}: histogram without a _count sample")),
                _ => {}
            }
        }
    }
    if errors.is_empty() {
        Ok(kinds)
    } else {
        Err(errors)
    }
}

/// A smoke workload touching every instrumented layer.
fn smoke_server() -> KgServer {
    let (kg, _) = generate_dblp(&DblpConfig::tiny(17));
    let config = ServerConfig {
        manager: ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() },
        ..Default::default()
    };
    let server = KgServer::new(kg, config);

    let mut session = server.read_session();
    let q = "PREFIX dblp: <https://www.dblp.org/> \
             SELECT ?p ?t WHERE { ?p a dblp:Publication . ?p dblp:title ?t }";
    session.sparql(q).expect("smoke query");
    session.sparql(q).expect("smoke query (cache hit)");

    let mut writer = server.write_session();
    writer.execute("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> }").expect("smoke write");
    writer.commit();

    let mut req = TrainRequest::new(
        "smoke-nc",
        GmlTask::NodeClassification(NcTask {
            target_type: "https://www.dblp.org/Publication".into(),
            label_predicate: "https://www.dblp.org/publishedIn".into(),
        }),
    );
    req.cfg = GnnConfig::fast_test();
    let id = server.submit_train(req).expect("smoke train admission");
    let done = server.wait(id).expect("smoke train outcome");
    assert!(matches!(done.state, JobState::Done { .. }), "smoke training failed: {done:?}");

    server
}

fn main() -> ExitCode {
    let server = smoke_server();
    let text = server.metrics().render_prometheus();

    let kinds = match validate_prometheus(&text) {
        Ok(kinds) => kinds,
        Err(errors) => {
            eprintln!("metrics_drift: malformed Prometheus exposition:");
            for e in &errors {
                eprintln!("  - {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut missing = Vec::new();
    for (name, kind) in METRIC_CATALOG {
        match kinds.get(*name) {
            Some(k) if k == kind => {}
            Some(k) => missing.push(format!("{name}: declared {kind}, rendered as {k}")),
            None => missing.push(format!("{name}: missing from the exposition")),
        }
    }
    if !missing.is_empty() {
        eprintln!("metrics_drift: catalog drift detected:");
        for m in &missing {
            eprintln!("  - {m}");
        }
        return ExitCode::FAILURE;
    }

    let json = server.metrics().render_json();
    if !(json.starts_with('{') && json.ends_with('}') && json.contains("\"kgnet_query_rows\"")) {
        eprintln!("metrics_drift: JSON render is malformed: {json}");
        return ExitCode::FAILURE;
    }

    // Contention/resource profiling: the lazily registered per-site lock
    // gauges render (the smoke workload exercised the queue-state and plan
    // cache mutexes), and the per-job attribution counters moved for the
    // completed training job.
    let sample = |name: &str| -> Option<u64> {
        text.lines().find_map(|l| l.strip_prefix(&format!("{name} "))).and_then(|v| v.parse().ok())
    };
    let mut profile_errors = Vec::new();
    for site_gauge in [
        "kgnet_lock_site_server_queue_state_acquires",
        "kgnet_lock_site_server_plan_cache_acquires",
    ] {
        if sample(site_gauge).is_none_or(|v| v == 0) {
            profile_errors.push(format!("{site_gauge}: per-site lock gauge missing or zero"));
        }
    }
    for counter in
        ["kgnet_lock_acquires_total", "kgnet_job_epochs_total", "kgnet_job_triples_sampled_total"]
    {
        if sample(counter).is_none_or(|v| v == 0) {
            profile_errors.push(format!("{counter}: did not move during the smoke workload"));
        }
    }
    if !profile_errors.is_empty() {
        eprintln!("metrics_drift: contention/resource profiling drift:");
        for e in &profile_errors {
            eprintln!("  - {e}");
        }
        return ExitCode::FAILURE;
    }

    // The aggregated debug surfaces stay renderable.
    let report = server.debug_report();
    for section in ["-- lock sites", "-- thread pools", "-- slow queries", "-- training jobs"] {
        if !report.contains(section) {
            eprintln!("metrics_drift: debug_report lost its {section:?} section");
            return ExitCode::FAILURE;
        }
    }
    let _ = server.slow_queries();

    println!(
        "metrics_drift: ok — {} metrics rendered, all {} catalog entries present",
        kinds.len(),
        METRIC_CATALOG.len()
    );
    ExitCode::SUCCESS
}
