//! CI metrics-drift gate: spin up a tiny server, push a smoke workload
//! through every instrumented layer (query, plan cache, commit, training
//! queue), and fail when the Prometheus exposition is malformed or any
//! metric of the published catalog ([`kgnet_server::METRIC_CATALOG`]) has
//! gone missing — the drift this guards against is a refactor silently
//! dropping or renaming an instrument the dashboards scrape. The same
//! validation then runs a second time against the body an actual scrape
//! of `GET /metrics` returns over loopback HTTP (what Prometheus would
//! see), plus a probe of `/healthz` and `/readyz` — so frontend drift
//! (broken content type, truncated body, a dead probe) fails CI too.
//!
//! Run with `cargo run --release -p kgnet-bench --bin metrics_drift`;
//! exits nonzero on any violation. Structural exposition validation
//! lives in [`kgnet_obs::validate_prometheus`].

use std::collections::HashMap;
use std::process::ExitCode;

use kgnet_core::{GmlTask, GnnConfig, ManagerConfig, NcTask};
use kgnet_datagen::{generate_dblp, DblpConfig};
use kgnet_gmlaas::TrainRequest;
use kgnet_obs::validate_prometheus;
use kgnet_server::{JobState, KgServer, ServerConfig, METRIC_CATALOG};

/// A smoke workload touching every instrumented layer.
fn smoke_server() -> KgServer {
    let (kg, _) = generate_dblp(&DblpConfig::tiny(17));
    let config = ServerConfig {
        manager: ManagerConfig { default_cfg: GnnConfig::fast_test(), ..Default::default() },
        ..Default::default()
    };
    let server = KgServer::new(kg, config);

    let mut session = server.read_session();
    let q = "PREFIX dblp: <https://www.dblp.org/> \
             SELECT ?p ?t WHERE { ?p a dblp:Publication . ?p dblp:title ?t }";
    session.sparql(q).expect("smoke query");
    session.sparql(q).expect("smoke query (cache hit)");

    let mut writer = server.write_session();
    writer.execute("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> }").expect("smoke write");
    writer.commit();

    let mut req = TrainRequest::new(
        "smoke-nc",
        GmlTask::NodeClassification(NcTask {
            target_type: "https://www.dblp.org/Publication".into(),
            label_predicate: "https://www.dblp.org/publishedIn".into(),
        }),
    );
    req.cfg = GnnConfig::fast_test();
    let id = server.submit_train(req).expect("smoke train admission");
    let done = server.wait(id).expect("smoke train outcome");
    assert!(matches!(done.state, JobState::Done { .. }), "smoke training failed: {done:?}");

    server
}

/// Structural validation plus a full catalog cross-check of one
/// exposition body. `origin` names the body in error output (in-process
/// render vs wire scrape).
fn check_exposition(origin: &str, text: &str) -> Result<HashMap<String, String>, ExitCode> {
    let kinds = match validate_prometheus(text) {
        Ok(kinds) => kinds,
        Err(errors) => {
            eprintln!("metrics_drift: malformed Prometheus exposition ({origin}):");
            for e in &errors {
                eprintln!("  - {e}");
            }
            return Err(ExitCode::FAILURE);
        }
    };
    let mut missing = Vec::new();
    for (name, kind) in METRIC_CATALOG {
        match kinds.get(*name) {
            Some(k) if k == kind => {}
            Some(k) => missing.push(format!("{name}: declared {kind}, rendered as {k}")),
            None => missing.push(format!("{name}: missing from the exposition")),
        }
    }
    if !missing.is_empty() {
        eprintln!("metrics_drift: catalog drift detected ({origin}):");
        for m in &missing {
            eprintln!("  - {m}");
        }
        return Err(ExitCode::FAILURE);
    }
    Ok(kinds)
}

/// Start the HTTP frontend on an ephemeral loopback port, scrape
/// `/metrics` the way Prometheus would, and probe `/healthz`/`/readyz`.
/// Returns the wire exposition body.
fn scrape_over_the_wire(server: &std::sync::Arc<KgServer>) -> Result<String, String> {
    let http = kgnet_http::HttpServer::start(
        std::sync::Arc::clone(server),
        kgnet_http::HttpConfig::default(),
    )
    .map_err(|e| format!("frontend failed to bind: {e}"))?;
    let addr = http.addr();
    let scraped = kgnet_http::client::get(addr, "/metrics")
        .map_err(|e| format!("GET /metrics failed: {e}"))?;
    if scraped.status != 200 {
        return Err(format!("GET /metrics answered {}", scraped.status));
    }
    if scraped.header("content-type").is_none_or(|ct| !ct.starts_with("text/plain")) {
        return Err(format!("GET /metrics content type: {:?}", scraped.header("content-type")));
    }
    for probe in ["/healthz", "/readyz"] {
        let r =
            kgnet_http::client::get(addr, probe).map_err(|e| format!("GET {probe} failed: {e}"))?;
        if r.status != 200 {
            return Err(format!("GET {probe} answered {} ({})", r.status, r.text()));
        }
    }
    http.shutdown();
    Ok(scraped.text())
}

fn main() -> ExitCode {
    let server = smoke_server();
    let text = server.metrics().render_prometheus();

    let kinds = match check_exposition("in-process render", &text) {
        Ok(kinds) => kinds,
        Err(code) => return code,
    };

    let json = server.metrics().render_json();
    if !(json.starts_with('{') && json.ends_with('}') && json.contains("\"kgnet_query_rows\"")) {
        eprintln!("metrics_drift: JSON render is malformed: {json}");
        return ExitCode::FAILURE;
    }

    // Contention/resource profiling: the lazily registered per-site lock
    // gauges render (the smoke workload exercised the queue-state and plan
    // cache mutexes), and the per-job attribution counters moved for the
    // completed training job.
    let sample = |name: &str| -> Option<u64> {
        text.lines().find_map(|l| l.strip_prefix(&format!("{name} "))).and_then(|v| v.parse().ok())
    };
    let mut profile_errors = Vec::new();
    for site_gauge in [
        "kgnet_lock_site_server_queue_state_acquires",
        "kgnet_lock_site_server_plan_cache_acquires",
    ] {
        if sample(site_gauge).is_none_or(|v| v == 0) {
            profile_errors.push(format!("{site_gauge}: per-site lock gauge missing or zero"));
        }
    }
    for counter in
        ["kgnet_lock_acquires_total", "kgnet_job_epochs_total", "kgnet_job_triples_sampled_total"]
    {
        if sample(counter).is_none_or(|v| v == 0) {
            profile_errors.push(format!("{counter}: did not move during the smoke workload"));
        }
    }
    if !profile_errors.is_empty() {
        eprintln!("metrics_drift: contention/resource profiling drift:");
        for e in &profile_errors {
            eprintln!("  - {e}");
        }
        return ExitCode::FAILURE;
    }

    // The aggregated debug surfaces stay renderable.
    let report = server.debug_report();
    for section in ["-- lock sites", "-- thread pools", "-- slow queries", "-- training jobs"] {
        if !report.contains(section) {
            eprintln!("metrics_drift: debug_report lost its {section:?} section");
            return ExitCode::FAILURE;
        }
    }
    let _ = server.slow_queries();

    // Second pass, over the wire: what an actual Prometheus scrape of the
    // frontend sees must pass the same structural + catalog validation,
    // and the health probes must answer while the server is idle.
    let server = std::sync::Arc::new(server);
    let wire = match scrape_over_the_wire(&server) {
        Ok(body) => body,
        Err(e) => {
            eprintln!("metrics_drift: wire scrape failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wire_kinds = match check_exposition("wire scrape of GET /metrics", &wire) {
        Ok(kinds) => kinds,
        Err(code) => return code,
    };

    println!(
        "metrics_drift: ok — {} metrics rendered in-process, {} over the wire, all {} catalog \
         entries present in both",
        kinds.len(),
        wire_kinds.len(),
        METRIC_CATALOG.len()
    );
    ExitCode::SUCCESS
}
