//! Reproduces the §IV.B.2 meta-sampling ablation: the d×h grid
//! (d1h1/d1h2/d2h1/d2h2) on both tasks. The paper reports d1h1 best for
//! node classification and d2h1 best for link prediction.

use kgnet_bench::{
    dblp_lp_task, dblp_nc_task, dblp_store, run_lp_cell, run_nc_cell, BenchEnv, Pipeline,
};
use kgnet_gml::config::GmlMethodKind;
use kgnet_linalg::memtrack;
use kgnet_sampler::SamplingScope;

fn main() {
    let env = BenchEnv::from_env();
    let cfg = env.gnn_config();
    let kg = dblp_store(&env);
    eprintln!("[abl-dh] DBLP-sim: {} triples, epochs={}", kg.len(), cfg.epochs);

    println!("\nMeta-sampling ablation — DBLP paper→venue NC (GraphSAINT)");
    println!(
        "{:<8} {:>9} {:>10} {:>12} {:>10}",
        "scope", "accuracy", "time(s)", "peak-mem", "#triples"
    );
    let mut best_nc = (String::new(), 0.0f64);
    for scope in SamplingScope::ALL {
        let cell = run_nc_cell(
            &kg,
            "DBLP",
            &dblp_nc_task(),
            GmlMethodKind::GraphSaint,
            Pipeline::KgPrime(scope),
            &cfg,
        );
        println!(
            "{:<8} {:>8.1}% {:>10.2} {:>12} {:>10}",
            scope.name(),
            cell.metric * 100.0,
            cell.time_s,
            memtrack::fmt_bytes(cell.mem_bytes),
            cell.n_triples
        );
        if cell.metric > best_nc.1 {
            best_nc = (scope.name(), cell.metric);
        }
    }

    println!("\nMeta-sampling ablation — DBLP author→affiliation LP (MorsE, Hits@10)");
    println!(
        "{:<8} {:>9} {:>10} {:>12} {:>10}",
        "scope", "hits@10", "time(s)", "peak-mem", "#triples"
    );
    let mut best_lp = (String::new(), 0.0f64);
    for scope in SamplingScope::ALL {
        let cell = run_lp_cell(
            &kg,
            "DBLP",
            &dblp_lp_task(),
            GmlMethodKind::Morse,
            Pipeline::KgPrime(scope),
            &cfg,
        );
        println!(
            "{:<8} {:>8.1}% {:>10.2} {:>12} {:>10}",
            scope.name(),
            cell.metric * 100.0,
            cell.time_s,
            memtrack::fmt_bytes(cell.mem_bytes),
            cell.n_triples
        );
        if cell.metric > best_lp.1 {
            best_lp = (scope.name(), cell.metric);
        }
    }

    println!("\nPaper finding: d1h1 best for NC, d2h1 best for LP.");
    println!(
        "Measured best: NC -> {} ({:.1}%), LP -> {} ({:.1}%)",
        best_nc.0,
        best_nc.1 * 100.0,
        best_lp.0,
        best_lp.1 * 100.0
    );
}
