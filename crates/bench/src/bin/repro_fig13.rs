//! Reproduces Fig. 13: accuracy / training time / training memory for the
//! DBLP paper→venue node-classification task, methods G-SAINT, RGCN and
//! SH-SAINT, traditional full-KG pipeline vs KGNet's meta-sampled KG'
//! (d1h1, the paper's best NC scope).

use kgnet_bench::{
    dblp_nc_task, dblp_store, print_figure, print_shape_checks, run_nc_cell, BenchEnv, Cell,
    PaperRef, Pipeline,
};
use kgnet_gml::config::GmlMethodKind;
use kgnet_sampler::SamplingScope;

fn main() {
    let env = BenchEnv::from_env();
    let cfg = env.gnn_config();
    let kg = dblp_store(&env);
    let task = dblp_nc_task();
    eprintln!("[fig13] DBLP-sim: {} triples, epochs={}, scale={}", kg.len(), cfg.epochs, env.scale);

    // Paper values from Fig. 13 (percent, hours, GB).
    let paper: &[(GmlMethodKind, PaperRef, PaperRef)] = &[
        (
            GmlMethodKind::GraphSaint,
            PaperRef { metric_pct: 82.0, time_h: 1.9, mem_gb: 46.0 },
            PaperRef { metric_pct: 90.0, time_h: 1.4, mem_gb: 36.0 },
        ),
        (
            GmlMethodKind::Rgcn,
            PaperRef { metric_pct: 74.0, time_h: 2.0, mem_gb: 220.0 },
            PaperRef { metric_pct: 80.0, time_h: 1.4, mem_gb: 82.0 },
        ),
        (
            GmlMethodKind::ShadowSaint,
            PaperRef { metric_pct: 85.0, time_h: 9.2, mem_gb: 94.0 },
            PaperRef { metric_pct: 91.0, time_h: 5.9, mem_gb: 54.0 },
        ),
    ];

    let mut cells: Vec<(Cell, Option<PaperRef>)> = Vec::new();
    for &(method, full_ref, prime_ref) in paper {
        eprintln!("[fig13] training {} on full KG...", method.name());
        let full = run_nc_cell(&kg, "DBLP", &task, method, Pipeline::FullKg, &cfg);
        eprintln!("[fig13] training {} on KG' (d1h1)...", method.name());
        let prime =
            run_nc_cell(&kg, "DBLP", &task, method, Pipeline::KgPrime(SamplingScope::D1H1), &cfg);
        cells.push((full, Some(full_ref)));
        cells.push((prime, Some(prime_ref)));
    }

    print_figure(
        "Figure 13 — DBLP paper→venue node classification (full KG vs KGNET(KG') d1h1)",
        &cells,
    );
    print_shape_checks(&cells);
}
