//! Reproduces Fig. 14: accuracy / training time / training memory for the
//! YAGO-4 place→country node-classification task, full KG vs KGNET(KG')
//! (d1h1).

use kgnet_bench::{
    print_figure, print_shape_checks, run_nc_cell, yago_nc_task, yago_store, BenchEnv, Cell,
    PaperRef, Pipeline,
};
use kgnet_gml::config::GmlMethodKind;
use kgnet_sampler::SamplingScope;

fn main() {
    let env = BenchEnv::from_env();
    let cfg = env.gnn_config();
    let kg = yago_store(&env);
    let task = yago_nc_task();
    eprintln!("[fig14] YAGO-sim: {} triples, epochs={}, scale={}", kg.len(), cfg.epochs, env.scale);

    // Paper values from Fig. 14 (percent, hours, GB).
    let paper: &[(GmlMethodKind, PaperRef, PaperRef)] = &[
        (
            GmlMethodKind::GraphSaint,
            PaperRef { metric_pct: 79.0, time_h: 7.3, mem_gb: 130.0 },
            PaperRef { metric_pct: 90.0, time_h: 1.8, mem_gb: 30.0 },
        ),
        (
            GmlMethodKind::Rgcn,
            PaperRef { metric_pct: 95.0, time_h: 2.0, mem_gb: 220.0 },
            PaperRef { metric_pct: 81.0, time_h: 2.1, mem_gb: 100.0 },
        ),
        (
            GmlMethodKind::ShadowSaint,
            PaperRef { metric_pct: 94.0, time_h: 6.4, mem_gb: 150.0 },
            PaperRef { metric_pct: 94.0, time_h: 2.6, mem_gb: 50.0 },
        ),
    ];

    let mut cells: Vec<(Cell, Option<PaperRef>)> = Vec::new();
    for &(method, full_ref, prime_ref) in paper {
        eprintln!("[fig14] training {} on full KG...", method.name());
        let full = run_nc_cell(&kg, "YAGO", &task, method, Pipeline::FullKg, &cfg);
        eprintln!("[fig14] training {} on KG' (d1h1)...", method.name());
        let prime =
            run_nc_cell(&kg, "YAGO", &task, method, Pipeline::KgPrime(SamplingScope::D1H1), &cfg);
        cells.push((full, Some(full_ref)));
        cells.push((prime, Some(prime_ref)));
    }

    print_figure(
        "Figure 14 — YAGO-4 place→country node classification (full KG vs KGNET(KG') d1h1)",
        &cells,
    );
    print_shape_checks(&cells);
}
