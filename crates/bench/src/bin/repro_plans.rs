//! Reproduces the §IV.B.3 rewrite-plan comparison (Figs. 11 vs 12): the
//! per-binding plan issues one HTTP call per paper while the dictionary
//! plan issues exactly one. Measures calls, bytes and wall time as the
//! number of query bindings grows.

use std::time::Instant;

use kgnet_core::{GnnConfig, KgNet, ManagerConfig, MlOutcome};
use kgnet_datagen::{generate_dblp, DblpConfig};
use kgnet_sparqlml::RewritePlan;

const TRAIN: &str = r#"
    PREFIX dblp: <https://www.dblp.org/>
    PREFIX kgnet: <https://www.kgnet.com/>
    INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
      {Name: 'pv', GML-Task:{ TaskType: kgnet:NodeClassifier,
         TargetNode: dblp:Publication, NodeLabel: dblp:publishedIn},
       Method: 'GraphSAINT'})}"#;

const QUERY: &str = r#"
    PREFIX dblp: <https://www.dblp.org/>
    PREFIX kgnet: <https://www.kgnet.com/>
    SELECT ?title ?venue WHERE {
      ?paper a dblp:Publication .
      ?paper dblp:title ?title .
      ?paper ?NodeClassifier ?venue .
      ?NodeClassifier a kgnet:NodeClassifier .
      ?NodeClassifier kgnet:TargetNode dblp:Publication .
      ?NodeClassifier kgnet:NodeLabel dblp:publishedIn . }"#;

fn run(platform: &mut KgNet, n_papers: usize) -> (usize, usize, f64, usize) {
    platform.reset_inference_stats();
    let t0 = Instant::now();
    let out = platform.execute(QUERY).expect("query");
    let elapsed = t0.elapsed().as_secs_f64();
    let MlOutcome::Rows(rows) = out else { panic!("expected rows") };
    assert_eq!(rows.len(), n_papers, "every paper should receive a venue");
    let stats = platform.manager().service().stats();
    (stats.calls, stats.bytes_out, elapsed, rows.len())
}

fn main() {
    println!("Rewrite plans — Fig. 11 (per-binding UDF calls) vs Fig. 12 (dictionary)");
    println!(
        "\n{:<10} {:<12} {:>10} {:>12} {:>10} {:>8}",
        "#papers", "plan", "HTTP calls", "bytes out", "time(ms)", "rows"
    );

    for &n_papers in &[200usize, 800, 2000] {
        let cfg = DblpConfig { n_papers, n_authors: n_papers / 2, ..DblpConfig::small(13) };
        let (kg, _) = generate_dblp(&cfg);

        // Dictionary plan: the optimizer's default choice.
        let mut mgr_cfg = ManagerConfig {
            default_cfg: GnnConfig { epochs: 10, ..GnnConfig::fast_test() },
            ..Default::default()
        };
        let mut platform = KgNet::with_graph_and_config(kg, mgr_cfg.clone());
        platform.execute(TRAIN).expect("train");
        let explain = platform.explain(QUERY).expect("explain");
        assert_eq!(explain.steps[0].plan, RewritePlan::Dictionary);
        let (calls, bytes, time, rows) = run(&mut platform, n_papers);
        println!(
            "{:<10} {:<12} {:>10} {:>12} {:>10.1} {:>8}",
            n_papers,
            "dictionary",
            calls,
            bytes,
            time * 1e3,
            rows
        );

        // Per-binding plan: forced by capping the dictionary memory to zero.
        mgr_cfg.dict_bytes_cap = Some(0);
        let (kg2, _) = generate_dblp(&cfg);
        let mut platform = KgNet::with_graph_and_config(kg2, mgr_cfg);
        platform.execute(TRAIN).expect("train");
        let explain = platform.explain(QUERY).expect("explain");
        assert_eq!(explain.steps[0].plan, RewritePlan::PerBinding);
        let (calls, bytes, time, rows) = run(&mut platform, n_papers);
        println!(
            "{:<10} {:<12} {:>10} {:>12} {:>10.1} {:>8}",
            n_papers,
            "per-binding",
            calls,
            bytes,
            time * 1e3,
            rows
        );
    }
    println!("\nShape check: dictionary plan issues exactly 1 call regardless of |?papers|,");
    println!("per-binding issues |?papers| calls — matching §IV.B.3's analysis.");
}
