//! Reproduces the §IV.A budget-constrained method-selection behaviour: how
//! the optimizer's choice shifts as the memory/time budget tightens, plus a
//! query-time model-selection example with an inference-time bound
//! (§IV.B.3's integer program).

use kgnet_bench::{dblp_nc_task, dblp_store, BenchEnv};
use kgnet_gml::config::GmlMethodKind;
use kgnet_gml::dataset::build_nc_dataset;
use kgnet_gml::estimate::GraphDims;
use kgnet_gmlaas::{select_method, Priority, TaskBudget};
use kgnet_graph::{SplitRatios, SplitStrategy};
use kgnet_sparqlml::{select_models, ModelInfo};

fn main() {
    let env = BenchEnv::from_env();
    let cfg = env.gnn_config();
    let kg = dblp_store(&env);
    let data =
        build_nc_dataset(&kg, &dblp_nc_task(), SplitStrategy::Random, SplitRatios::default(), 1);
    let dims = GraphDims::of_nc(&data);
    println!(
        "Method selection on DBLP-sim NC: n={} nodes, e={} edges, r={} relations\n",
        dims.n_nodes, dims.n_edges, dims.n_relations
    );

    println!("{:<28} {:<12}  candidate estimates (mem, time)", "budget", "chosen");
    let budgets: Vec<(String, TaskBudget)> = vec![
        ("unlimited / ModelScore".into(), TaskBudget::unlimited()),
        ("mem <= 64 MiB".into(), TaskBudget::with_memory(64 << 20)),
        ("mem <= 8 MiB".into(), TaskBudget::with_memory(8 << 20)),
        ("time <= 1 s".into(), TaskBudget::with_time(1.0)),
        (
            "unlimited / TrainingTime".into(),
            TaskBudget { priority: Priority::TrainingTime, ..Default::default() },
        ),
        (
            "unlimited / Memory".into(),
            TaskBudget { priority: Priority::Memory, ..Default::default() },
        ),
    ];
    for (label, budget) in budgets {
        let trace = select_method(&GmlMethodKind::NC_METHODS, &dims, &cfg, &budget);
        let chosen = trace.chosen.map_or("NONE".to_owned(), |m| m.name().to_owned());
        let ests: Vec<String> = trace
            .candidates
            .iter()
            .map(|c| {
                format!(
                    "{}({}, {:.1}s){}",
                    c.method.name(),
                    kgnet_linalg::memtrack::fmt_bytes(c.estimate.memory_bytes),
                    c.estimate.time_s,
                    if c.feasible { "" } else { "!" }
                )
            })
            .collect();
        println!("{label:<28} {chosen:<12}  {}", ests.join(" "));
    }

    // Query-time model selection among trained models (the §IV.B.3 IP).
    println!("\nQuery-time model selection (accuracy-max under inference-time bound):");
    let portfolio = vec![vec![
        ModelInfo {
            uri: "m-rgcn".into(),
            accuracy: 0.80,
            inference_time_ms: 0.4,
            cardinality: 6000,
            method: "RGCN".into(),
        },
        ModelInfo {
            uri: "m-saint".into(),
            accuracy: 0.90,
            inference_time_ms: 1.8,
            cardinality: 6000,
            method: "G-SAINT".into(),
        },
        ModelInfo {
            uri: "m-shadow".into(),
            accuracy: 0.91,
            inference_time_ms: 6.5,
            cardinality: 6000,
            method: "SH-SAINT".into(),
        },
    ]];
    for bound in [None, Some(5.0f64), Some(1.0)] {
        let chosen = select_models(&portfolio, bound);
        let label = bound.map_or("unbounded".to_owned(), |b| format!("<= {b} ms"));
        match chosen {
            Some(idx) => println!("  bound {label:<12} -> {}", portfolio[0][idx[0]].uri),
            None => println!("  bound {label:<12} -> infeasible"),
        }
    }
}
