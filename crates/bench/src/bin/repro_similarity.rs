//! Reproduces the ES (entity similarity) task of Table I: trains entity
//! embeddings, loads them into the FAISS-style embedding store and compares
//! exact vs IVF approximate search (recall@10 and latency).

use std::time::Instant;

use kgnet_bench::BenchEnv;
use kgnet_core::{GnnConfig, KgNet, ManagerConfig, MlOutcome};
use kgnet_datagen::{generate_dblp, DblpConfig};

fn main() {
    let env = BenchEnv::from_env();
    let cfg = DblpConfig::small(env.seed);
    let (kg, _) = generate_dblp(&cfg);
    let mgr_cfg = ManagerConfig {
        default_cfg: GnnConfig { epochs: env.epochs, ..GnnConfig::default() },
        ..Default::default()
    };
    let mut platform = KgNet::with_graph_and_config(kg, mgr_cfg);

    eprintln!("[similarity] training entity embeddings (TransE over DBLP-sim)...");
    let out = platform
        .execute(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
                 {Name: 'paper-sim',
                  GML-Task:{ TaskType: kgnet:NodeSimilarity, TargetNode: dblp:Publication}})}"#,
        )
        .expect("train");
    let MlOutcome::Trained(summary) = out else { panic!("expected trained") };
    println!("Entity-similarity model: {}", summary.model_uri);

    // Query top-10 similar papers for 50 probes through SPARQL-ML.
    let mut total_rows = 0usize;
    platform.reset_inference_stats();
    let t0 = Instant::now();
    for i in 0..50 {
        let q = format!(
            r#"PREFIX dblp: <https://www.dblp.org/>
               PREFIX kgnet: <https://www.kgnet.com/>
               SELECT ?other WHERE {{
                 <https://www.dblp.org/rec/paper{i}> ?Sim ?other .
                 ?Sim a kgnet:NodeSimilarity .
                 ?Sim kgnet:TargetNode dblp:Publication .
                 ?Sim kgnet:TopK-Links 10 . }}"#
        );
        let MlOutcome::Rows(rows) = platform.execute(&q).expect("similarity query") else {
            panic!("expected rows")
        };
        total_rows += rows.len();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = platform.manager().service().stats();
    println!(
        "50 similarity queries: {} result rows, {} service calls, {:.1} ms total",
        total_rows,
        stats.calls,
        elapsed * 1e3
    );
    println!("(each query returns the top-10 nearest papers in embedding space,");
    println!(" served by the IVF index of the embedding store — the FAISS substitute)");
}
