//! Scalability sweep (paper §III.A motivation: "training GML models on
//! these large KGs requires colossal computing resources... meta-sampling
//! presents an opportunity to optimize training models on large KGs"):
//! trains GraphSAINT on the full KG and on KG' (d1h1) across growing KG
//! scales and reports how the cost gap widens while accuracy holds.

use kgnet_bench::{dblp_nc_task, run_nc_cell, BenchEnv, Pipeline};
use kgnet_datagen::DblpConfig;
use kgnet_gml::config::GmlMethodKind;
use kgnet_linalg::memtrack;
use kgnet_sampler::SamplingScope;

fn main() {
    let env = BenchEnv::from_env();
    let cfg = env.gnn_config();
    println!("Scalability sweep — DBLP paper→venue NC (GraphSAINT), epochs={}", cfg.epochs);
    println!(
        "\n{:<8} {:<12} {:>10} {:>10} {:>12} {:>10}",
        "scale", "pipeline", "accuracy", "time(s)", "peak-mem", "#triples"
    );
    for factor in [0.25, 0.5, 1.0, 2.0] {
        let kg_cfg = DblpConfig::benchmark(env.seed).scaled(factor * env.scale);
        let kg = kgnet_datagen::generate_dblp(&kg_cfg).0;
        for pipeline in [Pipeline::FullKg, Pipeline::KgPrime(SamplingScope::D1H1)] {
            let cell = run_nc_cell(
                &kg,
                "DBLP",
                &dblp_nc_task(),
                GmlMethodKind::GraphSaint,
                pipeline,
                &cfg,
            );
            println!(
                "{:<8} {:<12} {:>9.1}% {:>10.2} {:>12} {:>10}",
                factor,
                cell.pipeline,
                cell.metric * 100.0,
                cell.time_s,
                memtrack::fmt_bytes(cell.mem_bytes),
                cell.n_triples
            );
        }
    }
    println!("\nShape check: KG' triple counts and training cost grow with the task,");
    println!("not with the KG — full-KG costs grow with the whole graph.");
}
