//! Reproduces Fig. 15: Hits@10 / training time / training memory for the
//! DBLP author→affiliation link-prediction task with MorsE, full KG vs
//! KGNET(KG') (d2h1, the paper's best LP scope).

use kgnet_bench::{
    dblp_lp_task, dblp_store, print_figure, print_shape_checks, run_lp_cell, BenchEnv, Cell,
    PaperRef, Pipeline,
};
use kgnet_gml::config::GmlMethodKind;
use kgnet_sampler::SamplingScope;

fn main() {
    let env = BenchEnv::from_env();
    // Link prediction converges more slowly than the NC tasks (the paper's
    // MorsE runs are 3.1h-58.8h vs ~2h for NC): give it 2x the epochs.
    let mut cfg = env.gnn_config();
    cfg.epochs *= 2;
    let kg = dblp_store(&env);
    let task = dblp_lp_task();
    eprintln!("[fig15] DBLP-sim: {} triples, epochs={}, scale={}", kg.len(), cfg.epochs, env.scale);

    eprintln!("[fig15] training MorsE on full KG...");
    let full = run_lp_cell(&kg, "DBLP", &task, GmlMethodKind::Morse, Pipeline::FullKg, &cfg);
    eprintln!("[fig15] training MorsE on KG' (d2h1)...");
    let prime = run_lp_cell(
        &kg,
        "DBLP",
        &task,
        GmlMethodKind::Morse,
        Pipeline::KgPrime(SamplingScope::D2H1),
        &cfg,
    );

    let cells: Vec<(Cell, Option<PaperRef>)> = vec![
        (full, Some(PaperRef { metric_pct: 16.0, time_h: 58.8, mem_gb: 136.0 })),
        (prime, Some(PaperRef { metric_pct: 89.0, time_h: 3.1, mem_gb: 6.0 })),
    ];

    print_figure("Figure 15 — DBLP author→affiliation link prediction, MorsE (Hits@10)", &cells);
    print_shape_checks(&cells);
}
