//! Reproduces Table I: statistics of the two benchmark KGs and their tasks.

use kgnet_bench::{dblp_store, yago_store, BenchEnv};
use kgnet_graph::kg_stats;

fn main() {
    let env = BenchEnv::from_env();
    println!("Table I — Statistics of the used KGs and GNN tasks");
    println!("(synthetic substrates at scale {}; the paper uses DBLP=252M,", env.scale);
    println!(" YAGO4=400M triples — shape, not magnitude, is reproduced)\n");

    let dblp = dblp_store(&env);
    let yago = yago_store(&env);
    let ds = kg_stats(&dblp);
    let ys = kg_stats(&yago);

    let venues = ds.nodes_of_type("https://www.dblp.org/Venue");
    let affiliations = ds.nodes_of_type("https://www.dblp.org/Affiliation");
    let papers = ds.nodes_of_type("https://www.dblp.org/Publication");
    let countries = ys.nodes_of_type("http://yago-knowledge.org/resource/Country");
    let places = ys.nodes_of_type("http://yago-knowledge.org/resource/Place");

    println!("{:<22} {:>14} {:>14}   paper", "Knowledge Graph", "DBLP-sim", "YAGO4-sim");
    println!("{:<22} {:>14} {:>14}   252M / 400M", "#Triples", ds.n_triples, ys.n_triples);
    println!(
        "{:<22} {:>14} {:>14}   50 venues / 200 countries",
        "#Label classes", venues, countries
    );
    println!("{:<22} {:>14} {:>14}   1.2M papers / (places)", "#NC targets", papers, places);
    println!("{:<22} {:>14} {:>14}   51K affiliations / -", "#LP destinations", affiliations, 0);
    println!("{:<22} {:>14} {:>14}   48 / 98", "#Edge Types", ds.n_edge_types, ys.n_edge_types);
    println!("{:<22} {:>14} {:>14}   42 / 104", "#Node Types", ds.n_node_types, ys.n_node_types);
    println!("{:<22} {:>14} {:>14}   NC,LP,ES / NC", "Tasks", "NC,LP,ES", "NC");

    let ok_edge = ds.n_edge_types >= 40 && ys.n_edge_types >= 90;
    let ok_node = ds.n_node_types >= 40 && ys.n_node_types >= 100;
    println!(
        "\nShape checks: edge-type counts {} node-type counts {}",
        if ok_edge { "OK" } else { "MISS" },
        if ok_node { "OK" } else { "MISS" }
    );
}
