//! # kgnet-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§V) on the synthetic substrates:
//!
//! | binary                  | reproduces |
//! |-------------------------|------------|
//! | `repro_table1`          | Table I (KG statistics) |
//! | `repro_fig13`           | Fig. 13 (DBLP paper→venue NC) |
//! | `repro_fig14`           | Fig. 14 (YAGO place→country NC) |
//! | `repro_fig15`           | Fig. 15 (DBLP author→affiliation LP) |
//! | `repro_ablation_dh`     | §IV.B.2 meta-sampling d×h grid |
//! | `repro_plans`           | §IV.B.3 / Figs. 11–12 rewrite plans |
//! | `repro_model_selection` | §IV.A budget-constrained method selection |
//! | `repro_similarity`      | Table I ES task (embedding store) |
//! | `repro_scaling`         | §III.A scalability sweep (cost vs KG scale) |
//!
//! Environment knobs: `KGNET_SCALE` (entity-count multiplier, default 1.0),
//! `KGNET_EPOCHS` (default 30), `KGNET_SEED` (default 13).

#![forbid(unsafe_code)]

use std::time::Instant;

use kgnet_datagen::{DblpConfig, YagoConfig};
use kgnet_gml::config::{GmlMethodKind, GnnConfig};
use kgnet_gml::dataset::{build_lp_dataset, build_nc_dataset};
use kgnet_gml::{train_lp, train_nc, TrainReport};
use kgnet_graph::{LpTask, NcTask, SplitRatios, SplitStrategy};
use kgnet_linalg::memtrack;
use kgnet_rdf::RdfStore;
use kgnet_sampler::{meta_sample_task, SamplingScope};

/// Experiment-wide settings read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct BenchEnv {
    /// Entity-count multiplier applied to the benchmark KG configs.
    pub scale: f64,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl BenchEnv {
    /// Read `KGNET_SCALE` / `KGNET_EPOCHS` / `KGNET_SEED`.
    pub fn from_env() -> Self {
        let get = |k: &str| std::env::var(k).ok();
        BenchEnv {
            scale: get("KGNET_SCALE").and_then(|v| v.parse().ok()).unwrap_or(1.0),
            epochs: get("KGNET_EPOCHS").and_then(|v| v.parse().ok()).unwrap_or(30),
            seed: get("KGNET_SEED").and_then(|v| v.parse().ok()).unwrap_or(13),
        }
    }

    /// Trainer configuration derived from the env.
    pub fn gnn_config(&self) -> GnnConfig {
        GnnConfig { epochs: self.epochs, seed: self.seed, dropout: 0.0, ..GnnConfig::default() }
    }
}

/// The benchmark DBLP KG at the configured scale.
pub fn dblp_store(env: &BenchEnv) -> RdfStore {
    let cfg = DblpConfig::benchmark(env.seed).scaled(env.scale);
    kgnet_datagen::generate_dblp(&cfg).0
}

/// The benchmark YAGO4 KG at the configured scale.
pub fn yago_store(env: &BenchEnv) -> RdfStore {
    let cfg = YagoConfig::benchmark(env.seed).scaled(env.scale);
    kgnet_datagen::generate_yago(&cfg).0
}

/// The DBLP paper→venue classification task (Figs. 2, 13).
pub fn dblp_nc_task() -> NcTask {
    use kgnet_datagen::vocab::dblp as v;
    NcTask { target_type: v::PUBLICATION.into(), label_predicate: v::PUBLISHED_IN.into() }
}

/// The DBLP author→affiliation link-prediction task (Figs. 10, 15).
pub fn dblp_lp_task() -> LpTask {
    use kgnet_datagen::vocab::dblp as v;
    LpTask {
        source_type: v::PERSON.into(),
        edge_predicate: v::AFFILIATED_WITH.into(),
        dest_type: v::AFFILIATION.into(),
    }
}

/// The YAGO place→country classification task (Fig. 14).
pub fn yago_nc_task() -> NcTask {
    use kgnet_datagen::vocab::yago as v;
    NcTask { target_type: v::PLACE.into(), label_predicate: v::LOCATED_IN_COUNTRY.into() }
}

/// Which graph a cell trains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pipeline {
    /// Traditional pipeline over the whole KG.
    FullKg,
    /// KGNet pipeline over the meta-sampled task-specific subgraph.
    KgPrime(SamplingScope),
}

impl Pipeline {
    /// Display name matching the paper's legends.
    pub fn label(&self, kg_name: &str) -> String {
        match self {
            Pipeline::FullKg => format!("{kg_name}(KG)"),
            Pipeline::KgPrime(_) => "KGNET(KG')".to_owned(),
        }
    }
}

/// One measured cell of a figure.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Trained method.
    pub method: GmlMethodKind,
    /// Pipeline label.
    pub pipeline: String,
    /// Accuracy (NC) or Hits@10 (LP) in `[0,1]`.
    pub metric: f64,
    /// Training seconds.
    pub time_s: f64,
    /// Peak tracked training memory, bytes.
    pub mem_bytes: usize,
    /// Graph size the method actually trained on.
    pub n_triples: usize,
}

/// Train one NC cell.
pub fn run_nc_cell(
    kg: &RdfStore,
    kg_name: &str,
    task: &NcTask,
    method: GmlMethodKind,
    pipeline: Pipeline,
    cfg: &GnnConfig,
) -> Cell {
    let owned;
    let store = match pipeline {
        Pipeline::FullKg => kg,
        Pipeline::KgPrime(scope) => {
            let sampled = meta_sample_task(
                kg,
                &kgnet_graph::GmlTask::NodeClassification(task.clone()),
                scope,
            );
            owned = sampled.store;
            &owned
        }
    };
    let n_triples = store.len();
    memtrack::reset_peak();
    let t0 = Instant::now();
    let data =
        build_nc_dataset(store, task, SplitStrategy::Random, SplitRatios::default(), cfg.seed);
    let trained = train_nc(method, &data, cfg);
    let wall = t0.elapsed().as_secs_f64();
    cell_from_report(&trained.report, method, pipeline.label(kg_name), wall, n_triples)
}

/// Train one LP cell.
pub fn run_lp_cell(
    kg: &RdfStore,
    kg_name: &str,
    task: &LpTask,
    method: GmlMethodKind,
    pipeline: Pipeline,
    cfg: &GnnConfig,
) -> Cell {
    let owned;
    let store = match pipeline {
        Pipeline::FullKg => kg,
        Pipeline::KgPrime(scope) => {
            let sampled =
                meta_sample_task(kg, &kgnet_graph::GmlTask::LinkPrediction(task.clone()), scope);
            owned = sampled.store;
            &owned
        }
    };
    let n_triples = store.len();
    memtrack::reset_peak();
    let t0 = Instant::now();
    let data = build_lp_dataset(store, task, SplitRatios::default(), cfg.seed);
    let trained = train_lp(method, &data, cfg);
    let wall = t0.elapsed().as_secs_f64();
    cell_from_report(&trained.report, method, pipeline.label(kg_name), wall, n_triples)
}

fn cell_from_report(
    report: &TrainReport,
    method: GmlMethodKind,
    pipeline: String,
    wall_s: f64,
    n_triples: usize,
) -> Cell {
    Cell {
        method,
        pipeline,
        metric: report.test_metric,
        time_s: wall_s,
        mem_bytes: report.peak_mem_bytes,
        n_triples,
    }
}

/// Paper-reported reference values for one cell (for side-by-side output).
#[derive(Debug, Clone, Copy)]
pub struct PaperRef {
    /// Accuracy/Hits@10 in percent.
    pub metric_pct: f64,
    /// Training time in hours.
    pub time_h: f64,
    /// Training memory in GB.
    pub mem_gb: f64,
}

/// Print one figure as an aligned table with the paper's numbers alongside.
pub fn print_figure(title: &str, cells: &[(Cell, Option<PaperRef>)]) {
    println!("\n{title}");
    println!("{}", "-".repeat(title.len()));
    println!(
        "{:<10} {:<12} {:>9} {:>10} {:>12} {:>10}   paper (metric%, time, mem)",
        "method", "pipeline", "metric", "time(s)", "peak-mem", "#triples"
    );
    for (cell, paper) in cells {
        let paper_str = match paper {
            Some(p) => {
                format!("[{:.0}%, {:.1}h, {:.0}GB]", p.metric_pct, p.time_h, p.mem_gb)
            }
            None => String::new(),
        };
        println!(
            "{:<10} {:<12} {:>8.1}% {:>10.2} {:>12} {:>10}   {}",
            cell.method.name(),
            cell.pipeline,
            cell.metric * 100.0,
            cell.time_s,
            memtrack::fmt_bytes(cell.mem_bytes),
            cell.n_triples,
            paper_str
        );
    }
}

/// Shape verdicts: does KG' beat the full KG per method on metric, time and
/// memory — the claim of Figs. 13–15?
pub fn print_shape_checks(cells: &[(Cell, Option<PaperRef>)]) {
    let mut checks: Vec<String> = Vec::new();
    let mut methods: Vec<GmlMethodKind> = cells.iter().map(|(c, _)| c.method).collect();
    methods.dedup();
    for method in methods {
        let full = cells
            .iter()
            .find(|(c, _)| c.method == method && c.pipeline.ends_with("(KG)"))
            .map(|(c, _)| c);
        let prime = cells
            .iter()
            .find(|(c, _)| c.method == method && c.pipeline == "KGNET(KG')")
            .map(|(c, _)| c);
        if let (Some(f), Some(p)) = (full, prime) {
            checks.push(format!(
                "{}: metric {} ({:.1}% vs {:.1}%), time {} ({:.1}s vs {:.1}s), memory {} ({} vs {})",
                method.name(),
                tick(p.metric >= f.metric * 0.98),
                p.metric * 100.0,
                f.metric * 100.0,
                tick(p.time_s <= f.time_s),
                p.time_s,
                f.time_s,
                tick(p.mem_bytes <= f.mem_bytes),
                memtrack::fmt_bytes(p.mem_bytes),
                memtrack::fmt_bytes(f.mem_bytes),
            ));
        }
    }
    println!(
        "\nShape checks (KG' vs full KG; paper claims comparable-or-better\naccuracy, lower time, lower memory):"
    );
    for c in checks {
        println!("  {c}");
    }
}

fn tick(ok: bool) -> &'static str {
    if ok {
        "OK"
    } else {
        "MISS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        let env = BenchEnv { scale: 1.0, epochs: 30, seed: 13 };
        let cfg = env.gnn_config();
        assert_eq!(cfg.epochs, 30);
        assert_eq!(cfg.seed, 13);
    }

    #[test]
    fn pipeline_labels_match_paper_legends() {
        assert_eq!(Pipeline::FullKg.label("DBLP"), "DBLP(KG)");
        assert_eq!(Pipeline::KgPrime(SamplingScope::D1H1).label("DBLP"), "KGNET(KG')");
    }

    #[test]
    fn nc_cell_runs_on_tiny_graph() {
        let cfg = DblpConfig::tiny(3);
        let (kg, _) = kgnet_datagen::generate_dblp(&cfg);
        let gnn = GnnConfig { epochs: 5, ..GnnConfig::fast_test() };
        let full =
            run_nc_cell(&kg, "DBLP", &dblp_nc_task(), GmlMethodKind::Gcn, Pipeline::FullKg, &gnn);
        let prime = run_nc_cell(
            &kg,
            "DBLP",
            &dblp_nc_task(),
            GmlMethodKind::Gcn,
            Pipeline::KgPrime(SamplingScope::D1H1),
            &gnn,
        );
        assert!(prime.n_triples < full.n_triples);
        assert!(full.time_s > 0.0 && prime.time_s > 0.0);
    }
}
